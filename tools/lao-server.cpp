//===- lao-server.cpp - Persistent sharded compile daemon -----------------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
//
// Long-running compile service over the out-of-SSA pipeline: reads
// framed requests (see src/server/Protocol.h and docs/SERVER.md) from
// stdin, shards them across a worker pool, and writes responses to
// stdout in request order. Diagnostics and the exit report go to
// stderr, so stdout stays a pure protocol stream.
//
//   lao-server [options]
//     --workers=N             worker pool size (default 4)
//     --max-frame-bytes=N     request body size limit (default 4 MiB)
//     --default-deadline-ms=N deadline for requests that carry none
//                             (default 0 = unlimited)
//     --stats                 print the merged per-request counter
//                             deltas with the exit report
//
// Exit status: 0 on clean EOF, 1 after an unrecoverable framing error
// (a final id-0 protocol error record is still written), 2 on bad
// usage.
//
//===----------------------------------------------------------------------===//

#include "server/Server.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

using namespace lao;

namespace {

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--workers=N] [--max-frame-bytes=N] "
               "[--default-deadline-ms=N] [--stats]\n",
               Argv0);
  return 2;
}

bool parseUnsigned(const std::string &Arg, const char *Prefix,
                   uint64_t &Out) {
  if (Arg.rfind(Prefix, 0) != 0)
    return false;
  Out = std::strtoull(Arg.c_str() + std::strlen(Prefix), nullptr, 10);
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  ServerOptions Opts;
  bool PrintStats = false;
  for (int K = 1; K < Argc; ++K) {
    std::string A = Argv[K];
    uint64_t V = 0;
    if (parseUnsigned(A, "--workers=", V)) {
      Opts.NumWorkers = static_cast<unsigned>(V);
    } else if (parseUnsigned(A, "--max-frame-bytes=", V)) {
      Opts.Limits.MaxBodyBytes = static_cast<size_t>(V);
    } else if (parseUnsigned(A, "--default-deadline-ms=", V)) {
      Opts.DefaultDeadlineMs = V;
    } else if (A == "--stats") {
      PrintStats = true;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", A.c_str());
      return usage(Argv[0]);
    }
  }

  Server S(Opts);
  int Rc = S.serve(std::cin, std::cout);

  const ServerReport &R = S.report();
  std::fprintf(stderr,
               "lao-server: %llu requests (%llu ok, %llu errors: "
               "%llu timeout, %llu parse, %llu oversized, %llu pipeline)\n",
               static_cast<unsigned long long>(R.NumRequests),
               static_cast<unsigned long long>(R.NumOk),
               static_cast<unsigned long long>(R.NumErrors),
               static_cast<unsigned long long>(R.NumTimeouts),
               static_cast<unsigned long long>(R.NumParseErrors),
               static_cast<unsigned long long>(R.NumOversized),
               static_cast<unsigned long long>(R.NumPipelineErrors));
  if (PrintStats) {
    std::fprintf(stderr, "=== merged per-request counters ===\n");
    for (const auto &[Key, Value] : R.MergedCounters)
      std::fprintf(stderr, "%12llu  %s\n",
                   static_cast<unsigned long long>(Value), Key.c_str());
  }
  return Rc;
}
