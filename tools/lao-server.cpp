//===- lao-server.cpp - Persistent sharded compile daemon -----------------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
//
// Long-running compile service over the out-of-SSA pipeline: reads
// framed requests (see src/server/Protocol.h and docs/SERVER.md) from
// stdin — or, with --listen-unix/--listen-tcp, from any number of
// concurrent socket connections sharing one worker pool — and writes
// responses back in per-connection request order. Diagnostics and the
// exit report go to stderr, so stdout stays a pure protocol stream.
//
//   lao-server [options]
//     --workers=N             worker pool size (default 4)
//     --max-body-bytes=N      frame body size limit (default 4 MiB;
//                             --max-frame-bytes is a deprecated alias)
//     --default-deadline-ms=N deadline for requests that carry none
//                             (default 0 = unlimited)
//     --max-inflight=N        per-connection backpressure window:
//                             frames dispatched but not yet answered
//                             (default 64, 0 = unbounded)
//     --default-regalloc=P    allocator preset applied to requests that
//                             carry no "regalloc" key, e.g. chordal or
//                             chaitin-briggs/load-store-opt (default:
//                             none — such requests skip allocation)
//     --listen-unix=PATH      serve a Unix-domain socket instead of
//                             stdin/stdout
//     --listen-tcp=SPEC       serve TCP ("port" or "host:port"; a bare
//                             port binds loopback only)
//     --stats                 print the merged per-request counter
//                             deltas with the exit report
//
// SIGINT/SIGTERM request a graceful shutdown: the daemon stops taking
// new frames, drains everything in flight, flushes the reorder
// buffers, and exits 0.
//
// Exit status: 0 on clean EOF or signal-driven drain, 1 after an
// unrecoverable framing error on the stdio stream (a final id-0
// protocol error record is still written; socket-mode framing errors
// only end their own connection), 2 on bad usage.
//
//===----------------------------------------------------------------------===//

#include "regalloc/RegAlloc.h"
#include "server/FdStream.h"
#include "server/Server.h"
#include "server/SocketTransport.h"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <istream>
#include <ostream>
#include <string>

#include <unistd.h>

using namespace lao;

namespace {

/// Set by the signal handlers; polled by the stop-aware streambuf (the
/// stdio reader) and the socket accept loop.
std::atomic<bool> GStop{false};

void onShutdownSignal(int) { GStop.store(true, std::memory_order_release); }

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--workers=N] [--max-body-bytes=N] "
               "[--default-deadline-ms=N] [--max-inflight=N] "
               "[--default-regalloc=<preset>] "
               "[--listen-unix=PATH | --listen-tcp=SPEC] [--stats]\n",
               Argv0);
  return 2;
}

bool parseUnsigned(const std::string &Arg, const char *Prefix,
                   uint64_t &Out) {
  if (Arg.rfind(Prefix, 0) != 0)
    return false;
  Out = std::strtoull(Arg.c_str() + std::strlen(Prefix), nullptr, 10);
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  ServerOptions Opts;
  bool PrintStats = false;
  std::string ListenUnix, ListenTcp;
  for (int K = 1; K < Argc; ++K) {
    std::string A = Argv[K];
    uint64_t V = 0;
    if (parseUnsigned(A, "--workers=", V)) {
      Opts.NumWorkers = static_cast<unsigned>(V);
    } else if (parseUnsigned(A, "--max-body-bytes=", V) ||
               parseUnsigned(A, "--max-frame-bytes=", V)) {
      Opts.Limits.MaxBodyBytes = static_cast<size_t>(V);
    } else if (parseUnsigned(A, "--default-deadline-ms=", V)) {
      Opts.DefaultDeadlineMs = V;
    } else if (parseUnsigned(A, "--max-inflight=", V)) {
      Opts.MaxInFlightFrames = static_cast<unsigned>(V);
    } else if (A.rfind("--default-regalloc=", 0) == 0) {
      Opts.DefaultRegAlloc = A.substr(std::strlen("--default-regalloc="));
      if (!regAllocPresetOpt(Opts.DefaultRegAlloc)) {
        std::fprintf(stderr, "unknown regalloc preset '%s'\n",
                     Opts.DefaultRegAlloc.c_str());
        return usage(Argv[0]);
      }
    } else if (A.rfind("--listen-unix=", 0) == 0) {
      ListenUnix = A.substr(std::strlen("--listen-unix="));
    } else if (A.rfind("--listen-tcp=", 0) == 0) {
      ListenTcp = A.substr(std::strlen("--listen-tcp="));
    } else if (A == "--stats") {
      PrintStats = true;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", A.c_str());
      return usage(Argv[0]);
    }
  }
  if (!ListenUnix.empty() && !ListenTcp.empty()) {
    std::fprintf(stderr, "--listen-unix and --listen-tcp are exclusive\n");
    return usage(Argv[0]);
  }

  // No SA_RESTART: a signal must interrupt blocked reads/accepts so the
  // EINTR-retrying poll loops re-check the stop flag promptly.
  struct sigaction SA = {};
  SA.sa_handler = onShutdownSignal;
  sigemptyset(&SA.sa_mask);
  SA.sa_flags = 0;
  sigaction(SIGINT, &SA, nullptr);
  sigaction(SIGTERM, &SA, nullptr);
  signal(SIGPIPE, SIG_IGN); // A vanished client is that client's problem.

  Server S(Opts);
  int Rc = 0;
  if (!ListenUnix.empty() || !ListenTcp.empty()) {
    std::string Error;
    int ListenFd = !ListenUnix.empty()
                       ? listenUnixSocket(ListenUnix, Error)
                       : listenTcpSocket(ListenTcp, Error);
    if (ListenFd < 0) {
      std::fprintf(stderr, "lao-server: %s\n", Error.c_str());
      return 1;
    }
    std::fprintf(stderr, "lao-server: listening on %s\n",
                 (!ListenUnix.empty() ? ListenUnix : ListenTcp).c_str());
    Rc = runSocketServer(S, ListenFd, GStop);
    close(ListenFd);
    if (!ListenUnix.empty())
      unlink(ListenUnix.c_str());
  } else {
    FdStreamBuf InBuf(STDIN_FILENO, &GStop);
    FdStreamBuf OutBuf(STDOUT_FILENO);
    std::istream In(&InBuf);
    std::ostream Out(&OutBuf);
    Rc = S.serve(In, Out);
    Out.flush();
  }

  const ServerReport &R = S.report();
  std::fprintf(stderr,
               "lao-server: %llu requests (%llu ok, %llu errors: "
               "%llu timeout, %llu parse, %llu oversized, %llu pipeline, "
               "%llu batch), %llu batches, max in-flight %llu%s\n",
               static_cast<unsigned long long>(R.NumRequests),
               static_cast<unsigned long long>(R.NumOk),
               static_cast<unsigned long long>(R.NumErrors),
               static_cast<unsigned long long>(R.NumTimeouts),
               static_cast<unsigned long long>(R.NumParseErrors),
               static_cast<unsigned long long>(R.NumOversized),
               static_cast<unsigned long long>(R.NumPipelineErrors),
               static_cast<unsigned long long>(R.NumBatchErrors),
               static_cast<unsigned long long>(R.NumBatches),
               static_cast<unsigned long long>(R.MaxInFlight),
               GStop.load(std::memory_order_acquire)
                   ? " (drained after shutdown signal)"
                   : "");
  if (PrintStats) {
    std::fprintf(stderr, "=== merged per-request counters ===\n");
    for (const auto &[Key, Value] : R.MergedCounters)
      std::fprintf(stderr, "%12llu  %s\n",
                   static_cast<unsigned long long>(Value), Key.c_str());
  }
  return Rc;
}
