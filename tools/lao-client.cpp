//===- lao-client.cpp - Batch driver for lao-server -----------------------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
//
// Spawns a lao-server (connected over pipes), streams a batch of
// compile requests into it, and collects the framed responses. All
// requests are pipelined before the first response is read (a reader
// thread drains the server concurrently), so a multi-worker server
// really does compile them interleaved.
//
//   lao-client --server="<cmd>" [options] <file.lai>...
//     --server="cmd"      server command line, run via /bin/sh -c
//                         (e.g. --server="./tools/lao-server --workers=4")
//     --pipeline=<name>   preset for every request (default Lphi,ABI+C)
//     --ssa               ask the server to build optimized SSA first
//     --deadline-ms=N     per-request deadline
//     --print-records     print each response's JSON record to stdout
//     --quiet             don't print the transformed IR
//     --selftest          ignore file arguments: submit every function
//                         of every benchmark suite and require each
//                         response to be byte-identical to the one-shot
//                         in-process pipeline on the same text — the
//                         server-vs-lao-opt equivalence gate CI runs
//
// Exit status: 0 when every response is ok (and, under --selftest,
// byte-identical); 1 otherwise; 2 on bad usage.
//
//===----------------------------------------------------------------------===//

#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "outofssa/Pipeline.h"
#include "server/Protocol.h"
#include "workloads/Suites.h"

#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace lao;

namespace {

struct Options {
  std::string ServerCmd;
  std::string Pipeline = "Lphi,ABI+C";
  bool BuildSSA = false;
  uint64_t DeadlineMs = 0;
  bool PrintRecords = false;
  bool Quiet = false;
  bool Selftest = false;
  std::vector<std::string> Files;
};

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s --server=\"<cmd>\" [--pipeline=<preset>] [--ssa] "
               "[--deadline-ms=N] [--print-records] [--quiet] "
               "(--selftest | <file.lai>...)\n",
               Argv0);
  return 2;
}

struct ServerProcess {
  pid_t Pid = -1;
  int WriteFd = -1; ///< Our requests -> server stdin.
  int ReadFd = -1;  ///< Server stdout -> our responses.
};

bool spawnServer(const std::string &Cmd, ServerProcess &SP) {
  int ToChild[2], FromChild[2];
  if (pipe(ToChild) != 0 || pipe(FromChild) != 0)
    return false;
  pid_t P = fork();
  if (P < 0)
    return false;
  if (P == 0) {
    dup2(ToChild[0], STDIN_FILENO);
    dup2(FromChild[1], STDOUT_FILENO);
    close(ToChild[0]);
    close(ToChild[1]);
    close(FromChild[0]);
    close(FromChild[1]);
    execl("/bin/sh", "sh", "-c", Cmd.c_str(), static_cast<char *>(nullptr));
    _exit(127);
  }
  close(ToChild[0]);
  close(FromChild[1]);
  SP.Pid = P;
  SP.WriteFd = ToChild[1];
  SP.ReadFd = FromChild[0];
  return true;
}

bool writeAll(int Fd, const std::string &Data) {
  size_t Off = 0;
  while (Off < Data.size()) {
    ssize_t N = write(Fd, Data.data() + Off, Data.size() - Off);
    if (N <= 0)
      return false;
    Off += static_cast<size_t>(N);
  }
  return true;
}

/// One request plus what the client knows to check it against.
struct Job {
  Request Req;
  std::string Label;    ///< File path or suite/function name.
  std::string Expected; ///< Byte-exact expected IR (selftest only).
};

bool loadFileJobs(const Options &Opts, std::vector<Job> &Jobs) {
  uint64_t NextId = 1;
  for (const std::string &Path : Opts.Files) {
    std::ifstream In(Path);
    if (!In) {
      std::fprintf(stderr, "cannot open '%s'\n", Path.c_str());
      return false;
    }
    std::stringstream SS;
    SS << In.rdbuf();
    Job J;
    J.Req.Id = NextId++;
    J.Req.Pipeline = Opts.Pipeline;
    J.Req.BuildSSA = Opts.BuildSSA;
    J.Req.DeadlineMs = Opts.DeadlineMs;
    J.Req.Text = SS.str();
    J.Label = Path;
    Jobs.push_back(std::move(J));
  }
  return true;
}

void loadSelftestJobs(const Options &Opts, std::vector<Job> &Jobs) {
  uint64_t NextId = 1;
  PipelineConfig Config = pipelinePreset(Opts.Pipeline);
  for (const SuiteSpec &Spec : allSuites())
    for (Workload &W : Spec.Make()) {
      Job J;
      J.Req.Id = NextId++;
      J.Req.Pipeline = Opts.Pipeline;
      J.Req.DeadlineMs = Opts.DeadlineMs;
      J.Req.Text = printFunction(*W.F);
      J.Label = std::string(Spec.Name) + "/" + W.Name;
      // The reference result: the exact one-shot path lao-opt runs,
      // on the same *text* the server will see (parse of a print, so
      // value numbering matches the server's parse).
      std::string ParseError;
      auto Ref = parseFunction(J.Req.Text, &ParseError);
      if (!Ref) {
        std::fprintf(stderr, "selftest: %s does not round-trip: %s\n",
                     J.Label.c_str(), ParseError.c_str());
        continue;
      }
      runPipeline(*Ref, Config);
      J.Expected = printFunction(*Ref);
      Jobs.push_back(std::move(J));
    }
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts;
  for (int K = 1; K < Argc; ++K) {
    std::string A = Argv[K];
    if (A.rfind("--server=", 0) == 0) {
      Opts.ServerCmd = A.substr(std::strlen("--server="));
    } else if (A.rfind("--pipeline=", 0) == 0) {
      Opts.Pipeline = A.substr(std::strlen("--pipeline="));
    } else if (A == "--ssa") {
      Opts.BuildSSA = true;
    } else if (A.rfind("--deadline-ms=", 0) == 0) {
      Opts.DeadlineMs =
          std::strtoull(A.c_str() + std::strlen("--deadline-ms="), nullptr,
                        10);
    } else if (A == "--print-records") {
      Opts.PrintRecords = true;
    } else if (A == "--quiet") {
      Opts.Quiet = true;
    } else if (A == "--selftest") {
      Opts.Selftest = true;
    } else if (!A.empty() && A[0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", A.c_str());
      return usage(Argv[0]);
    } else {
      Opts.Files.push_back(A);
    }
  }
  if (Opts.ServerCmd.empty() || (Opts.Files.empty() && !Opts.Selftest))
    return usage(Argv[0]);
  if (Opts.Selftest &&
      !pipelinePresetOpt(Opts.Pipeline)) {
    std::fprintf(stderr, "unknown pipeline preset '%s'\n",
                 Opts.Pipeline.c_str());
    return 2;
  }

  std::vector<Job> Jobs;
  if (Opts.Selftest)
    loadSelftestJobs(Opts, Jobs);
  else if (!loadFileJobs(Opts, Jobs))
    return 1;

  // A dying server must surface as a failed write, not a fatal signal.
  signal(SIGPIPE, SIG_IGN);
  ServerProcess SP;
  if (!spawnServer(Opts.ServerCmd, SP)) {
    std::fprintf(stderr, "cannot spawn server '%s'\n",
                 Opts.ServerCmd.c_str());
    return 1;
  }

  // Drain the server concurrently so pipelining every request up front
  // cannot deadlock on a full pipe in either direction.
  std::string ResponseBytes;
  std::thread Reader([&] {
    char Buf[65536];
    for (ssize_t N; (N = read(SP.ReadFd, Buf, sizeof(Buf))) > 0;)
      ResponseBytes.append(Buf, static_cast<size_t>(N));
  });

  bool WriteFailed = false;
  for (const Job &J : Jobs)
    if (!writeAll(SP.WriteFd, encodeRequest(J.Req))) {
      WriteFailed = true;
      break;
    }
  close(SP.WriteFd);
  Reader.join();
  close(SP.ReadFd);
  int ChildStatus = 0;
  waitpid(SP.Pid, &ChildStatus, 0);

  if (WriteFailed) {
    std::fprintf(stderr, "server went away while submitting requests\n");
    return 1;
  }
  bool ServerClean =
      WIFEXITED(ChildStatus) && WEXITSTATUS(ChildStatus) == 0;
  if (!ServerClean)
    std::fprintf(stderr, "server exited with status %d\n",
                 WIFEXITED(ChildStatus) ? WEXITSTATUS(ChildStatus) : -1);

  // Parse the response stream. Responses arrive in request order; check
  // that while indexing by id for the comparisons.
  std::istringstream In(ResponseBytes);
  FrameLimits Limits;
  std::map<uint64_t, Response> ById;
  uint64_t Failures = 0, Count = 0;
  bool OrderOk = true;
  for (;;) {
    Response Rsp;
    std::string Error;
    FrameStatus S = readResponse(In, Limits, Rsp, Error);
    if (S == FrameStatus::Eof)
      break;
    if (S != FrameStatus::Ok) {
      std::fprintf(stderr, "response stream: %s\n", Error.c_str());
      ++Failures;
      break;
    }
    ++Count;
    OrderOk &= Count > Jobs.size() || Rsp.Id == Jobs[Count - 1].Req.Id;
    if (Opts.PrintRecords)
      std::printf("%s\n", Rsp.RecordJson.c_str());
    ById[Rsp.Id] = std::move(Rsp);
  }
  if (!OrderOk) {
    std::fprintf(stderr, "responses arrived out of request order\n");
    ++Failures;
  }

  for (const Job &J : Jobs) {
    auto It = ById.find(J.Req.Id);
    if (It == ById.end()) {
      std::fprintf(stderr, "%s: no response\n", J.Label.c_str());
      ++Failures;
      continue;
    }
    const Response &Rsp = It->second;
    if (!Rsp.Ok) {
      std::fprintf(stderr, "%s: %s\n", J.Label.c_str(),
                   Rsp.RecordJson.c_str());
      ++Failures;
      continue;
    }
    if (Opts.Selftest && Rsp.IR != J.Expected) {
      std::fprintf(stderr,
                   "%s: server IR differs from one-shot pipeline\n"
                   "--- one-shot ---\n%s--- server ---\n%s",
                   J.Label.c_str(), J.Expected.c_str(), Rsp.IR.c_str());
      ++Failures;
      continue;
    }
    if (!Opts.Selftest && !Opts.Quiet)
      std::printf("; --- %s ---\n%s", J.Label.c_str(), Rsp.IR.c_str());
  }

  if (Opts.Selftest)
    std::fprintf(stderr,
                 "selftest: %zu functions, %llu failures (server %s)\n",
                 Jobs.size(), static_cast<unsigned long long>(Failures),
                 ServerClean ? "clean" : "UNCLEAN");
  return Failures == 0 && ServerClean ? 0 : 1;
}
