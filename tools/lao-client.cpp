//===- lao-client.cpp - Batch driver for lao-server -----------------------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
//
// Drives a lao-server: spawns one over pipes and/or connects to one
// over a socket, streams compile requests into it — singly or packed
// into BAT batch frames — and collects the framed responses. All
// frames are pipelined before the first response is read (a reader
// loop drains the server concurrently), so a multi-worker server
// really does compile them interleaved. The reader polls the spawned
// server process while it waits, so a server that dies mid-run is
// reported as a clear error instead of a hang.
//
//   lao-client [transport] [options] <file.lai>...
//     --server="cmd"      server command line, run via /bin/sh -c
//                         (e.g. --server="./tools/lao-server --workers=4").
//                         Alone: talk over its stdin/stdout pipes.
//                         With --connect-*: spawn it, then connect.
//     --connect-unix=PATH talk to a Unix-domain socket server
//     --connect-tcp=SPEC  talk to a TCP server ("port" or "host:port")
//     --batch=N           pack up to N functions per BAT frame
//                         (default 1 = one REQ frame per function)
//     --max-body-bytes=N  response frame size limit (default 64 MiB —
//                         batched responses are large)
//     --pipeline=<name>   preset for every request (default Lphi,ABI+C)
//     --ssa               ask the server to build optimized SSA first
//     --deadline-ms=N     per-request deadline
//     --regalloc=<preset> ask the server to allocate registers after
//                         the pipeline ("<allocator>[/<spill-model>]",
//                         see regalloc/RegAlloc.h). Under --selftest
//                         the in-process reference applies the same
//                         allocation, so byte-identity still gates.
//     --regalloc-regs=N   register-pool size for --regalloc
//     --print-records     print each response's JSON record to stdout
//     --quiet             don't print the transformed IR
//     --selftest          ignore file arguments: submit every function
//                         of every benchmark suite and require each
//                         response to be byte-identical to the one-shot
//                         in-process pipeline on the same text — the
//                         server-vs-lao-opt equivalence gate CI runs
//
// When the client spawned a socket-mode server itself, it finishes by
// sending SIGTERM and requires a clean exit 0 — the graceful-shutdown
// path is part of what a socket selftest proves.
//
// The exit report (stderr) includes per-request latency percentiles
// (p50/p95/p99/max), measured from frame submission to response-frame
// arrival under full pipelining; batch items inherit their frame's
// latency.
//
// Exit status: 0 when every response is ok (and, under --selftest,
// byte-identical); 1 otherwise; 2 on bad usage.
//
//===----------------------------------------------------------------------===//

#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "outofssa/Pipeline.h"
#include "server/Protocol.h"
#include "server/SocketTransport.h"
#include "workloads/Suites.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace lao;

namespace {

struct Options {
  std::string ServerCmd;
  std::string ConnectUnix;
  std::string ConnectTcp;
  uint64_t Batch = 1;
  size_t MaxBodyBytes = 64u << 20;
  std::string Pipeline = "Lphi,ABI+C";
  bool BuildSSA = false;
  uint64_t DeadlineMs = 0;
  std::string RegAlloc;
  uint64_t RegAllocRegs = 0;
  bool PrintRecords = false;
  bool Quiet = false;
  bool Selftest = false;
  std::vector<std::string> Files;
};

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--server=\"<cmd>\"] [--connect-unix=PATH | "
               "--connect-tcp=SPEC] [--batch=N] [--max-body-bytes=N] "
               "[--pipeline=<preset>] [--ssa] [--deadline-ms=N] "
               "[--regalloc=<preset>] [--regalloc-regs=N] "
               "[--print-records] [--quiet] (--selftest | <file.lai>...)\n",
               Argv0);
  return 2;
}

/// How the client reaches the server. Over pipes WriteFd/ReadFd differ;
/// over a socket they are the same fd. Pid is -1 for an external
/// (unspawned) server.
struct Transport {
  pid_t Pid = -1;
  int WriteFd = -1;
  int ReadFd = -1;
  bool IsSocket = false;
};

bool spawnServer(const std::string &Cmd, bool OverPipes, Transport &T) {
  int ToChild[2] = {-1, -1}, FromChild[2] = {-1, -1};
  if (OverPipes && (pipe(ToChild) != 0 || pipe(FromChild) != 0))
    return false;
  pid_t P = fork();
  if (P < 0)
    return false;
  if (P == 0) {
    if (OverPipes) {
      dup2(ToChild[0], STDIN_FILENO);
      dup2(FromChild[1], STDOUT_FILENO);
      close(ToChild[0]);
      close(ToChild[1]);
      close(FromChild[0]);
      close(FromChild[1]);
    } else {
      // A socket server never reads stdin; detach it so it cannot
      // steal bytes meant for us.
      int Null = open("/dev/null", O_RDONLY);
      if (Null >= 0) {
        dup2(Null, STDIN_FILENO);
        close(Null);
      }
    }
    // "exec" so the shell replaces itself: the pid we signal and reap
    // is the server, not a wrapper that would orphan it on SIGTERM.
    std::string ExecCmd = "exec " + Cmd;
    execl("/bin/sh", "sh", "-c", ExecCmd.c_str(),
          static_cast<char *>(nullptr));
    _exit(127);
  }
  if (OverPipes) {
    close(ToChild[0]);
    close(FromChild[1]);
    T.WriteFd = ToChild[1];
    T.ReadFd = FromChild[0];
  }
  T.Pid = P;
  return true;
}

/// Reaps T.Pid without blocking. Returns true (and fills \p Status) the
/// first time the child is found dead.
bool reapIfDead(Transport &T, int &Status) {
  if (T.Pid < 0)
    return false;
  int St = 0;
  if (waitpid(T.Pid, &St, WNOHANG) != T.Pid)
    return false;
  Status = St;
  T.Pid = -1;
  return true;
}

/// Connects to the requested socket, retrying while a just-spawned
/// server is still binding. Gives up immediately if that server dies.
int connectWithRetry(const Options &Opts, Transport &T, int &ChildStatus,
                     bool &ChildDead) {
  std::string Error;
  for (int Try = 0; Try < 120; ++Try) {
    int Fd = !Opts.ConnectUnix.empty()
                 ? connectUnixSocket(Opts.ConnectUnix, Error)
                 : connectTcpSocket(Opts.ConnectTcp, Error);
    if (Fd >= 0)
      return Fd;
    if (reapIfDead(T, ChildStatus)) {
      ChildDead = true;
      return -1;
    }
    if (T.Pid < 0)
      break; // External server: no point waiting for it to appear.
    usleep(50 * 1000);
  }
  std::fprintf(stderr, "%s\n", Error.c_str());
  return -1;
}

bool writeAll(int Fd, const std::string &Data) {
  size_t Off = 0;
  while (Off < Data.size()) {
    ssize_t N = write(Fd, Data.data() + Off, Data.size() - Off);
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0)
      return false;
    Off += static_cast<size_t>(N);
  }
  return true;
}

/// One request plus what the client knows to check it against.
struct Job {
  Request Req;
  std::string Label;    ///< File path or suite/function name.
  std::string Expected; ///< Byte-exact expected IR (selftest only).
};

/// One wire frame: a single REQ or a BAT covering several jobs.
struct Frame {
  uint64_t Id = 0;
  std::string Encoded;
  std::vector<size_t> JobIdx; ///< Item position -> index into Jobs.
};

bool loadFileJobs(const Options &Opts, std::vector<Job> &Jobs) {
  uint64_t NextId = 1;
  for (const std::string &Path : Opts.Files) {
    std::ifstream In(Path);
    if (!In) {
      std::fprintf(stderr, "cannot open '%s'\n", Path.c_str());
      return false;
    }
    std::stringstream SS;
    SS << In.rdbuf();
    Job J;
    J.Req.Id = NextId++;
    J.Req.Pipeline = Opts.Pipeline;
    J.Req.BuildSSA = Opts.BuildSSA;
    J.Req.DeadlineMs = Opts.DeadlineMs;
    J.Req.RegAlloc = Opts.RegAlloc;
    J.Req.RegAllocRegs = Opts.RegAllocRegs;
    J.Req.Text = SS.str();
    J.Label = Path;
    Jobs.push_back(std::move(J));
  }
  return true;
}

void loadSelftestJobs(const Options &Opts, std::vector<Job> &Jobs) {
  uint64_t NextId = 1;
  PipelineConfig Config = pipelinePreset(Opts.Pipeline);
  if (!Opts.RegAlloc.empty()) {
    Config.RegAlloc = regAllocPreset(Opts.RegAlloc);
    if (Opts.RegAllocRegs)
      Config.RegAlloc->NumRegs = static_cast<unsigned>(Opts.RegAllocRegs);
  }
  for (const SuiteSpec &Spec : allSuites())
    for (Workload &W : Spec.Make()) {
      Job J;
      J.Req.Id = NextId++;
      J.Req.Pipeline = Opts.Pipeline;
      J.Req.DeadlineMs = Opts.DeadlineMs;
      J.Req.RegAlloc = Opts.RegAlloc;
      J.Req.RegAllocRegs = Opts.RegAllocRegs;
      J.Req.Text = printFunction(*W.F);
      J.Label = std::string(Spec.Name) + "/" + W.Name;
      // The reference result: the exact one-shot path lao-opt runs,
      // on the same *text* the server will see (parse of a print, so
      // value numbering matches the server's parse).
      std::string ParseError;
      auto Ref = parseFunction(J.Req.Text, &ParseError);
      if (!Ref) {
        std::fprintf(stderr, "selftest: %s does not round-trip: %s\n",
                     J.Label.c_str(), ParseError.c_str());
        continue;
      }
      runPipeline(*Ref, Config);
      J.Expected = printFunction(*Ref);
      Jobs.push_back(std::move(J));
    }
}

/// Packs jobs into wire frames: one REQ each, or BAT frames of up to
/// Opts.Batch functions (every job shares the same option block by
/// construction).
std::vector<Frame> buildFrames(const Options &Opts,
                               const std::vector<Job> &Jobs) {
  std::vector<Frame> Frames;
  if (Opts.Batch <= 1) {
    for (size_t K = 0; K < Jobs.size(); ++K) {
      Frame F;
      F.Id = Jobs[K].Req.Id;
      F.Encoded = encodeRequest(Jobs[K].Req);
      F.JobIdx.push_back(K);
      Frames.push_back(std::move(F));
    }
    return Frames;
  }
  uint64_t NextId = 1;
  for (size_t K = 0; K < Jobs.size();) {
    BatchRequest B;
    B.Id = NextId++;
    B.Pipeline = Opts.Pipeline;
    B.BuildSSA = Opts.BuildSSA;
    B.DeadlineMs = Opts.DeadlineMs;
    B.RegAlloc = Opts.RegAlloc;
    B.RegAllocRegs = Opts.RegAllocRegs;
    Frame F;
    F.Id = B.Id;
    for (uint64_t N = 0; N < Opts.Batch && K < Jobs.size(); ++N, ++K) {
      B.Texts.push_back(Jobs[K].Req.Text);
      F.JobIdx.push_back(K);
    }
    F.Encoded = encodeBatchRequest(B);
    Frames.push_back(std::move(F));
  }
  return Frames;
}

/// Incremental frame-boundary detector over the raw response bytes.
/// The reader thread feeds it after every read(); whenever the bytes
/// now cover one more complete frame (header line + declared body + the
/// frame newline) it stamps that frame's id with the arrival time. This
/// is a timestamping overlay only — the authoritative parse of the same
/// bytes happens after the drain — so on anything unframeable it simply
/// stops measuring instead of guessing.
struct ArrivalScanner {
  using Clock = std::chrono::steady_clock;
  size_t Pos = 0;
  bool Dead = false;
  std::map<uint64_t, Clock::time_point> Arrivals; ///< First arrival per id.

  void feed(const std::string &Bytes) {
    Clock::time_point Now = Clock::now();
    while (!Dead) {
      size_t Nl = Bytes.find('\n', Pos);
      if (Nl == std::string::npos)
        return;
      unsigned long long Id = 0, BodyBytes = 0;
      if (std::sscanf(Bytes.c_str() + Pos, "LAO1 %*3s %llu %llu", &Id,
                      &BodyBytes) != 2) {
        Dead = true;
        return;
      }
      size_t End = Nl + 1 + static_cast<size_t>(BodyBytes) + 1;
      if (End > Bytes.size())
        return; // The frame's body is still in flight.
      Arrivals.emplace(Id, Now);
      Pos = End;
    }
  }
};

/// Nearest-rank percentile of \p Sorted (ascending), P in [0,100].
double percentileMs(const std::vector<double> &Sorted, double P) {
  if (Sorted.empty())
    return 0;
  size_t Rank = static_cast<size_t>(P / 100.0 * Sorted.size());
  return Sorted[std::min(Rank, Sorted.size() - 1)];
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts;
  for (int K = 1; K < Argc; ++K) {
    std::string A = Argv[K];
    if (A.rfind("--server=", 0) == 0) {
      Opts.ServerCmd = A.substr(std::strlen("--server="));
    } else if (A.rfind("--connect-unix=", 0) == 0) {
      Opts.ConnectUnix = A.substr(std::strlen("--connect-unix="));
    } else if (A.rfind("--connect-tcp=", 0) == 0) {
      Opts.ConnectTcp = A.substr(std::strlen("--connect-tcp="));
    } else if (A.rfind("--batch=", 0) == 0) {
      Opts.Batch = std::strtoull(A.c_str() + std::strlen("--batch="),
                                 nullptr, 10);
    } else if (A.rfind("--max-body-bytes=", 0) == 0) {
      Opts.MaxBodyBytes = static_cast<size_t>(std::strtoull(
          A.c_str() + std::strlen("--max-body-bytes="), nullptr, 10));
    } else if (A.rfind("--pipeline=", 0) == 0) {
      Opts.Pipeline = A.substr(std::strlen("--pipeline="));
    } else if (A == "--ssa") {
      Opts.BuildSSA = true;
    } else if (A.rfind("--deadline-ms=", 0) == 0) {
      Opts.DeadlineMs =
          std::strtoull(A.c_str() + std::strlen("--deadline-ms="), nullptr,
                        10);
    } else if (A.rfind("--regalloc=", 0) == 0) {
      Opts.RegAlloc = A.substr(std::strlen("--regalloc="));
    } else if (A.rfind("--regalloc-regs=", 0) == 0) {
      Opts.RegAllocRegs = std::strtoull(
          A.c_str() + std::strlen("--regalloc-regs="), nullptr, 10);
    } else if (A == "--print-records") {
      Opts.PrintRecords = true;
    } else if (A == "--quiet") {
      Opts.Quiet = true;
    } else if (A == "--selftest") {
      Opts.Selftest = true;
    } else if (!A.empty() && A[0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", A.c_str());
      return usage(Argv[0]);
    } else {
      Opts.Files.push_back(A);
    }
  }
  bool UseSocket = !Opts.ConnectUnix.empty() || !Opts.ConnectTcp.empty();
  if (!Opts.ConnectUnix.empty() && !Opts.ConnectTcp.empty()) {
    std::fprintf(stderr, "--connect-unix and --connect-tcp are exclusive\n");
    return usage(Argv[0]);
  }
  if ((Opts.ServerCmd.empty() && !UseSocket) ||
      (Opts.Files.empty() && !Opts.Selftest))
    return usage(Argv[0]);
  if (Opts.Selftest &&
      !pipelinePresetOpt(Opts.Pipeline)) {
    std::fprintf(stderr, "unknown pipeline preset '%s'\n",
                 Opts.Pipeline.c_str());
    return 2;
  }
  if (!Opts.RegAlloc.empty() && !regAllocPresetOpt(Opts.RegAlloc)) {
    std::fprintf(stderr, "unknown regalloc preset '%s'\n",
                 Opts.RegAlloc.c_str());
    return 2;
  }

  std::vector<Job> Jobs;
  if (Opts.Selftest)
    loadSelftestJobs(Opts, Jobs);
  else if (!loadFileJobs(Opts, Jobs))
    return 1;
  std::vector<Frame> Frames = buildFrames(Opts, Jobs);

  // A dying server must surface as a failed write, not a fatal signal.
  signal(SIGPIPE, SIG_IGN);
  Transport T;
  T.IsSocket = UseSocket;
  if (!Opts.ServerCmd.empty() &&
      !spawnServer(Opts.ServerCmd, /*OverPipes=*/!UseSocket, T)) {
    std::fprintf(stderr, "cannot spawn server '%s'\n",
                 Opts.ServerCmd.c_str());
    return 1;
  }
  int ChildStatus = 0;
  bool ChildDead = false;
  if (UseSocket) {
    int Fd = connectWithRetry(Opts, T, ChildStatus, ChildDead);
    if (Fd < 0) {
      if (ChildDead)
        std::fprintf(stderr, "server exited with status %d before "
                             "accepting connections\n",
                     WIFEXITED(ChildStatus) ? WEXITSTATUS(ChildStatus) : -1);
      return 1;
    }
    T.WriteFd = T.ReadFd = Fd;
  }

  // Drain the responses concurrently with the writes below, so
  // pipelining every frame up front cannot deadlock on a full pipe or
  // the server's backpressure window. The reader polls rather than
  // blocks so a server that dies before answering becomes a clear
  // error, not a hang: every idle tick checks whether the spawned
  // child is still alive. It owns T.Pid until joined.
  std::string ResponseBytes;
  ArrivalScanner Scanner; ///< Owned by the reader thread until joined.
  std::thread Reader([&] {
    for (;;) {
      pollfd P{T.ReadFd, POLLIN, 0};
      int R = poll(&P, 1, 100);
      if (R < 0) {
        if (errno == EINTR)
          continue;
        return;
      }
      if (R > 0) {
        char Buf[65536];
        ssize_t N = read(T.ReadFd, Buf, sizeof(Buf));
        if (N > 0) {
          ResponseBytes.append(Buf, static_cast<size_t>(N));
          Scanner.feed(ResponseBytes);
          continue;
        }
        return; // EOF (or a hard error): the response stream is over.
      }
      if (!reapIfDead(T, ChildStatus))
        continue;
      ChildDead = true;
      // The child is gone; salvage whatever it managed to flush, then
      // stop waiting for responses that can no longer arrive.
      for (;;) {
        pollfd P2{T.ReadFd, POLLIN, 0};
        if (poll(&P2, 1, 0) <= 0 || !(P2.revents & POLLIN))
          return;
        char Buf[65536];
        ssize_t N = read(T.ReadFd, Buf, sizeof(Buf));
        if (N <= 0)
          return;
        ResponseBytes.append(Buf, static_cast<size_t>(N));
        Scanner.feed(ResponseBytes);
      }
    }
  });

  // Submit every frame, stamping each submission so the exit report can
  // pair it with the frame's arrival, then half-close our sending
  // direction so the server sees EOF once it drains.
  std::map<uint64_t, ArrivalScanner::Clock::time_point> SendTimes;
  bool WriteFailed = false;
  for (const Frame &F : Frames) {
    SendTimes.emplace(F.Id, ArrivalScanner::Clock::now());
    if (!writeAll(T.WriteFd, F.Encoded)) {
      WriteFailed = true;
      break;
    }
  }
  if (T.IsSocket)
    shutdown(T.WriteFd, SHUT_WR);
  else
    close(T.WriteFd);
  Reader.join();
  close(T.ReadFd);

  // Settle the child. A pipe server exits on its own after EOF; a
  // spawned socket server is asked to shut down gracefully — SIGTERM
  // must drain and exit 0, which is exactly the shutdown path CI gates.
  if (T.Pid >= 0) {
    if (T.IsSocket)
      kill(T.Pid, SIGTERM);
    waitpid(T.Pid, &ChildStatus, 0);
    T.Pid = -1;
  }
  bool Spawned = !Opts.ServerCmd.empty();
  bool ServerClean =
      !Spawned ||
      (!ChildDead && WIFEXITED(ChildStatus) && WEXITSTATUS(ChildStatus) == 0);

  if (WriteFailed) {
    std::fprintf(stderr, "server went away while submitting requests%s\n",
                 ChildDead ? " (process died)" : "");
    return 1;
  }
  if (ChildDead)
    std::fprintf(stderr,
                 "server process %s before answering all requests\n",
                 WIFEXITED(ChildStatus)
                     ? "exited"
                     : WIFSIGNALED(ChildStatus) ? "was killed" : "vanished");
  else if (Spawned && !ServerClean)
    std::fprintf(stderr, "server exited with status %d\n",
                 WIFEXITED(ChildStatus) ? WEXITSTATUS(ChildStatus) : -1);

  // Parse the response stream: RSP frames for single requests, RSB for
  // batches, arriving in request order. Batch items map back to jobs by
  // position.
  std::istringstream In(ResponseBytes);
  FrameLimits Limits;
  Limits.MaxBodyBytes = Opts.MaxBodyBytes;
  std::vector<Response> JobRsp(Jobs.size());
  std::vector<bool> HaveRsp(Jobs.size(), false);
  std::map<uint64_t, const Frame *> FrameById;
  for (const Frame &F : Frames)
    FrameById[F.Id] = &F;
  uint64_t Failures = 0, FrameCount = 0;
  bool OrderOk = true;
  for (;;) {
    FrameKind Kind = FrameKind::Single;
    Response Rsp;
    BatchResponse Batch;
    std::string Error;
    FrameStatus S = readResponseFrame(In, Limits, Kind, Rsp, Batch, Error);
    if (S == FrameStatus::Eof)
      break;
    if (S != FrameStatus::Ok) {
      std::fprintf(stderr, "response stream: %s\n", Error.c_str());
      ++Failures;
      break;
    }
    uint64_t Id = Kind == FrameKind::Single ? Rsp.Id : Batch.Id;
    ++FrameCount;
    OrderOk &= FrameCount > Frames.size() ||
               Id == Frames[FrameCount - 1].Id;
    auto It = FrameById.find(Id);
    const Frame *F = It == FrameById.end() ? nullptr : It->second;
    if (Kind == FrameKind::Single) {
      if (Opts.PrintRecords)
        std::printf("%s\n", Rsp.RecordJson.c_str());
      if (F && F->JobIdx.size() == 1 && !HaveRsp[F->JobIdx[0]]) {
        JobRsp[F->JobIdx[0]] = std::move(Rsp);
        HaveRsp[F->JobIdx[0]] = true;
      }
      continue;
    }
    if (Opts.PrintRecords) {
      std::printf("%s\n", Batch.SummaryJson.c_str());
      for (const Response &Item : Batch.Items)
        std::printf("%s\n", Item.RecordJson.c_str());
    }
    if (!F || Batch.Items.size() != F->JobIdx.size()) {
      // A summary-only error RSB (malformed/oversized batch) or an id
      // we never sent: the member jobs stay unanswered.
      std::fprintf(stderr, "batch %llu failed: %s\n",
                   static_cast<unsigned long long>(Id),
                   Batch.SummaryJson.c_str());
      ++Failures;
      continue;
    }
    for (size_t K = 0; K < Batch.Items.size(); ++K)
      if (!HaveRsp[F->JobIdx[K]]) {
        JobRsp[F->JobIdx[K]] = std::move(Batch.Items[K]);
        HaveRsp[F->JobIdx[K]] = true;
      }
  }
  if (!OrderOk) {
    std::fprintf(stderr, "responses arrived out of request order\n");
    ++Failures;
  }

  for (size_t K = 0; K < Jobs.size(); ++K) {
    const Job &J = Jobs[K];
    if (!HaveRsp[K]) {
      std::fprintf(stderr, "%s: no response\n", J.Label.c_str());
      ++Failures;
      continue;
    }
    const Response &Rsp = JobRsp[K];
    if (!Rsp.Ok) {
      std::fprintf(stderr, "%s: %s\n", J.Label.c_str(),
                   Rsp.RecordJson.c_str());
      ++Failures;
      continue;
    }
    if (Opts.Selftest && Rsp.IR != J.Expected) {
      std::fprintf(stderr,
                   "%s: server IR differs from one-shot pipeline\n"
                   "--- one-shot ---\n%s--- server ---\n%s",
                   J.Label.c_str(), J.Expected.c_str(), Rsp.IR.c_str());
      ++Failures;
      continue;
    }
    if (!Opts.Selftest && !Opts.Quiet)
      std::printf("; --- %s ---\n%s", J.Label.c_str(), Rsp.IR.c_str());
  }

  // Per-request latency, measured frame submission -> response-frame
  // arrival — what a fully pipelining client actually experiences, so
  // queueing behind earlier frames counts. Batch items inherit their
  // frame's latency. Best-effort: frames whose response the scanner
  // never saw complete (dead server, unframeable bytes) are not
  // counted.
  std::vector<double> LatMs;
  for (const Frame &F : Frames) {
    auto SendIt = SendTimes.find(F.Id);
    auto ArrIt = Scanner.Arrivals.find(F.Id);
    if (SendIt == SendTimes.end() || ArrIt == Scanner.Arrivals.end())
      continue;
    double Ms = std::chrono::duration<double, std::milli>(ArrIt->second -
                                                          SendIt->second)
                    .count();
    LatMs.insert(LatMs.end(), F.JobIdx.size(), Ms);
  }
  if (!LatMs.empty()) {
    std::sort(LatMs.begin(), LatMs.end());
    std::fprintf(stderr,
                 "latency: %zu requests, p50=%.3fms p95=%.3fms "
                 "p99=%.3fms max=%.3fms\n",
                 LatMs.size(), percentileMs(LatMs, 50),
                 percentileMs(LatMs, 95), percentileMs(LatMs, 99),
                 LatMs.back());
  }
  if (Opts.Selftest)
    std::fprintf(stderr,
                 "selftest: %zu functions in %zu frames, %llu failures "
                 "(server %s)\n",
                 Jobs.size(), Frames.size(),
                 static_cast<unsigned long long>(Failures),
                 ServerClean ? "clean" : "UNCLEAN");
  return Failures == 0 && ServerClean ? 0 : 1;
}
