//===- lao-opt.cpp - Command-line driver ----------------------------------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
//
// Reads a mini-LAI function from a file (or stdin with "-"), runs the
// requested passes, and prints the result. A miniature of the original
// LAO tool's command line.
//
//   lao-opt [options] <file.lai|->
//     --ssa               build optimized pruned SSA first (for non-SSA
//                         input)
//     --ifconvert         if-convert diamonds to psi (implies --ssa input)
//     --pipeline=<name>   run an out-of-SSA preset (e.g. Lphi,ABI+C; see
//                         Pipeline.h; default: none)
//     --regalloc[=<preset>]
//                         allocate registers afterwards. The preset is
//                         "<allocator>[/<spill-model>]" (see
//                         regalloc/RegAlloc.h), e.g. chordal or
//                         chaitin-briggs/load-store-opt; no value means
//                         the default chaitin-briggs/spill-everywhere.
//                         An all-digits value is the deprecated
//                         register-count spelling (--regalloc=N), kept
//                         as an alias for --regalloc --regalloc-regs=N.
//     --regalloc-regs=N   size of the allocatable pool (default 12)
//     --run a,b,...       execute with the given integer arguments and
//                         print the trace
//     --exec=<engine>     engine for --run: interp (tree-walk, default),
//                         vm (threaded-dispatch bytecode), or both —
//                         which runs the two engines as an in-process
//                         differential check and fails on divergence
//                         (docs/EXEC.md)
//     --dot               print the CFG as Graphviz instead of text
//     --verify            print structural/pinning/SSA diagnostics
//     --stats             print pass statistics (including the global
//                         counter registry, LLVM -stats style)
//     --interference-stats
//                         print the pinning class-size histogram and the
//                         class-interference cache hit rate (pipeline
//                         runs only)
//     --coalesce-stats    print the aggressive coalescer's worklist
//                         profile: merges per round, graph builds vs
//                         repair scans, push/pop/requeue traffic and the
//                         peak worklist depth (pipeline runs only; the
//                         same numbers reach --timing-json and the bench
//                         JSON as coalesce.* counters)
//     --timing-json=<f>   write per-pass timings + counters as JSON
//
//===----------------------------------------------------------------------===//

#include "exec/Interpreter.h"
#include "exec/VM.h"
#include "ir/Clone.h"
#include "ir/DotExport.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "outofssa/MoveStats.h"
#include "outofssa/Pipeline.h"
#include "regalloc/RegAlloc.h"
#include "ssa/IfConversion.h"
#include "ssa/SSAVerifier.h"
#include "support/Json.h"
#include "support/Stats.h"
#include "support/StringUtils.h"
#include "workloads/Suites.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace lao;

namespace {

struct Options {
  bool BuildSSA = false;
  bool IfConvert = false;
  std::string Pipeline;
  bool RegAlloc = false;
  RegAllocOptions RegAllocOpts;
  bool Dot = false;
  bool Verify = false;
  bool Stats = false;
  bool InterferenceStats = false;
  bool CoalesceStats = false;
  std::string TimingJson;
  std::vector<uint64_t> RunArgs;
  bool Run = false;
  std::string Exec = "interp"; ///< --run engine: interp, vm, or both.
  std::string InputPath;
};

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--ssa] [--ifconvert] [--pipeline=<preset>] "
      "[--regalloc[=<preset>]] [--regalloc-regs=N] [--run a,b,...] "
      "[--exec=vm|interp|both] "
      "[--verify] [--stats] [--interference-stats] [--coalesce-stats] "
      "[--timing-json=<file>] <file.lai|->\n",
      Argv0);
  return 2;
}

bool parseArgs(int Argc, char **Argv, Options &Opts) {
  for (int K = 1; K < Argc; ++K) {
    std::string A = Argv[K];
    if (A == "--ssa") {
      Opts.BuildSSA = true;
    } else if (A == "--ifconvert") {
      Opts.IfConvert = true;
    } else if (A.rfind("--pipeline=", 0) == 0) {
      Opts.Pipeline = A.substr(std::strlen("--pipeline="));
    } else if (A == "--regalloc") {
      Opts.RegAlloc = true;
    } else if (A.rfind("--regalloc=", 0) == 0) {
      Opts.RegAlloc = true;
      std::string Value = A.substr(std::strlen("--regalloc="));
      if (!Value.empty() &&
          Value.find_first_not_of("0123456789") == std::string::npos) {
        // Deprecated register-count spelling, kept as an alias (same
        // precedent as lao-server's --max-frame-bytes).
        Opts.RegAllocOpts.NumRegs = static_cast<unsigned>(
            std::strtoul(Value.c_str(), nullptr, 10));
      } else {
        std::optional<RegAllocOptions> RA = regAllocPresetOpt(Value);
        if (!RA) {
          std::fprintf(stderr,
                       "unknown regalloc preset '%s' (want "
                       "<allocator>[/<spill-model>], see "
                       "regalloc/RegAlloc.h)\n",
                       Value.c_str());
          return false;
        }
        unsigned NumRegs = Opts.RegAllocOpts.NumRegs;
        Opts.RegAllocOpts = *RA;
        Opts.RegAllocOpts.NumRegs = NumRegs; // --regalloc-regs may precede.
      }
    } else if (A.rfind("--regalloc-regs=", 0) == 0) {
      Opts.RegAllocOpts.NumRegs = static_cast<unsigned>(std::strtoul(
          A.c_str() + std::strlen("--regalloc-regs="), nullptr, 10));
    } else if (A.rfind("--run", 0) == 0) {
      Opts.Run = true;
      std::string List =
          A.size() > 5 && A[5] == '=' ? A.substr(6) : std::string();
      if (List.empty() && K + 1 < Argc)
        List = Argv[++K];
      for (const std::string &Piece : splitString(List, ','))
        Opts.RunArgs.push_back(std::strtoull(Piece.c_str(), nullptr, 0));
    } else if (A.rfind("--exec=", 0) == 0) {
      Opts.Exec = A.substr(std::strlen("--exec="));
      if (Opts.Exec != "vm" && Opts.Exec != "interp" && Opts.Exec != "both") {
        std::fprintf(stderr, "unknown exec engine '%s' (want vm, interp, "
                             "or both)\n",
                     Opts.Exec.c_str());
        return false;
      }
    } else if (A == "--dot") {
      Opts.Dot = true;
    } else if (A == "--verify") {
      Opts.Verify = true;
    } else if (A == "--stats") {
      Opts.Stats = true;
    } else if (A == "--interference-stats") {
      Opts.InterferenceStats = true;
    } else if (A == "--coalesce-stats") {
      Opts.CoalesceStats = true;
    } else if (A.rfind("--timing-json=", 0) == 0) {
      Opts.TimingJson = A.substr(std::strlen("--timing-json="));
    } else if (!A.empty() && A[0] == '-' && A != "-") {
      std::fprintf(stderr, "unknown option '%s'\n", A.c_str());
      return false;
    } else {
      Opts.InputPath = A;
    }
  }
  return !Opts.InputPath.empty();
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts;
  if (!parseArgs(Argc, Argv, Opts))
    return usage(Argv[0]);

  std::string Text;
  if (Opts.InputPath == "-") {
    std::stringstream SS;
    SS << std::cin.rdbuf();
    Text = SS.str();
  } else {
    std::ifstream In(Opts.InputPath);
    if (!In) {
      std::fprintf(stderr, "cannot open '%s'\n", Opts.InputPath.c_str());
      return 1;
    }
    std::stringstream SS;
    SS << In.rdbuf();
    Text = SS.str();
  }

  std::string Error;
  auto F = parseFunction(Text, &Error);
  if (!F) {
    std::fprintf(stderr, "parse error: %s\n", Error.c_str());
    return 1;
  }

  if (Opts.Verify) {
    for (const std::string &D : verifyStructure(*F))
      std::fprintf(stderr, "structure: %s\n", D.c_str());
    for (const std::string &D : verifyPinning(*F))
      std::fprintf(stderr, "pinning: %s\n", D.c_str());
  }

  std::unique_ptr<Function> Reference; // Pre-transform, for --run.
  if (Opts.Run)
    Reference = cloneFunction(*F);

  if (Opts.BuildSSA) {
    normalizeToOptimizedSSA(*F);
    if (Opts.Verify)
      for (const std::string &D : verifySSA(*F))
        std::fprintf(stderr, "ssa: %s\n", D.c_str());
  }
  if (Opts.IfConvert) {
    IfConversionStats S = convertIfsToPsi(*F);
    if (Opts.Stats)
      std::fprintf(stderr,
                   "ifconvert: %u diamonds, %u triangles, %u psis\n",
                   S.NumDiamondsConverted, S.NumTrianglesConverted,
                   S.NumPsisCreated);
  }
  if (!Opts.Pipeline.empty()) {
    std::optional<PipelineConfig> Config = pipelinePresetOpt(Opts.Pipeline);
    if (!Config) {
      std::fprintf(stderr,
                   "unknown pipeline preset '%s' (see outofssa/Pipeline.h "
                   "for the Table 1 names)\n",
                   Opts.Pipeline.c_str());
      return 1;
    }
    Config->CollectInterferenceStats = Opts.InterferenceStats;
    StatsSnapshot Before = StatsRegistry::instance().snapshot();
    PipelineResult R = runPipeline(*F, *Config);
    if (Opts.InterferenceStats) {
      const PinningContext::InterferenceReport &IR = R.Interference;
      std::fprintf(stderr, "interference %s: %llu classes, sizes",
                   F->name().c_str(),
                   static_cast<unsigned long long>(IR.NumClasses));
      static const char *Buckets[6] = {"1",   "2",    "3-4",
                                       "5-8", "9-16", ">=17"};
      for (unsigned K = 0; K < 6; ++K)
        if (IR.SizeHist[K])
          std::fprintf(stderr, " [%s]=%llu", Buckets[K],
                       static_cast<unsigned long long>(IR.SizeHist[K]));
      if (IR.EngineUsed) {
        uint64_t Total = IR.Queries + IR.CacheHits;
        std::fprintf(stderr,
                     "\n  engine: %llu/%llu cache hits (%.1f%%), "
                     "%llu evictions, %llu probes (pairwise bound %llu)",
                     static_cast<unsigned long long>(IR.CacheHits),
                     static_cast<unsigned long long>(Total),
                     Total ? 100.0 * double(IR.CacheHits) / double(Total)
                           : 0.0,
                     static_cast<unsigned long long>(IR.CacheEvictions),
                     static_cast<unsigned long long>(IR.Probes),
                     static_cast<unsigned long long>(IR.PairCost));
      }
      if (IR.PairwiseQueries)
        std::fprintf(stderr, "\n  pairwise scans: %llu",
                     static_cast<unsigned long long>(IR.PairwiseQueries));
      std::fprintf(stderr, "\n");
    }
    if (Opts.CoalesceStats) {
      const CoalescerStats &CS = R.Coalescer;
      std::fprintf(stderr,
                   "coalesce %s: %u merges in %u rounds, %u moves removed\n"
                   "  graph: %u builds, %u repair scans, %u stale edges "
                   "removed\n"
                   "  worklist: %u pushes, %u pops, %u requeues, peak depth "
                   "%u, %u confirm scans\n",
                   F->name().c_str(), CS.NumMerges, CS.NumRounds,
                   CS.NumMovesRemoved, CS.NumRebuilds, CS.NumRepairScans,
                   CS.NumStaleEdgesRemoved, CS.NumWorklistPushes,
                   CS.NumWorklistPops, CS.NumRequeues, CS.MaxWorklistDepth,
                   CS.NumConfirmScans);
      if (!CS.RoundMerges.empty()) {
        std::fprintf(stderr, "  merges per round:");
        for (unsigned M : CS.RoundMerges)
          std::fprintf(stderr, " %u", M);
        std::fprintf(stderr, "\n");
      }
    }
    if (Opts.Stats)
      std::fprintf(stderr,
                   "pipeline %s: moves=%u weighted=%llu phi-copies=%u "
                   "pin-copies=%u repairs=%u elided=%u\n",
                   Opts.Pipeline.c_str(), R.NumMoves,
                   static_cast<unsigned long long>(R.WeightedMoves),
                   R.Translate.NumPhiCopies, R.Translate.NumPinCopies,
                   R.Translate.NumRepairs, R.Translate.NumElidedCopies);
    if (!Opts.TimingJson.empty()) {
      StatsSnapshot Counters =
          StatsRegistry::delta(Before, StatsRegistry::instance().snapshot());
      JsonWriter W;
      W.beginObject();
      W.key("input").value(Opts.InputPath);
      W.key("pipeline").value(Opts.Pipeline);
      W.key("moves").value(R.NumMoves);
      W.key("weighted_moves").value(R.WeightedMoves);
      W.key("seconds").value(R.Timings.total());
      W.key("per_pass_seconds").beginObject();
      for (const auto &[Phase, Seconds] : R.Timings.entries())
        W.key(Phase).value(Seconds);
      W.endObject();
      W.key("counters").beginObject();
      for (const auto &[Key, Value] : Counters)
        W.key(Key).value(Value);
      W.endObject();
      W.endObject();
      std::FILE *Out = std::fopen(Opts.TimingJson.c_str(), "w");
      if (!Out) {
        std::fprintf(stderr, "cannot write '%s'\n", Opts.TimingJson.c_str());
        return 1;
      }
      std::fprintf(Out, "%s\n", W.str().c_str());
      std::fclose(Out);
    }
  }
  if (Opts.RegAlloc) {
    RegAllocResult R = allocateRegisters(*F, Opts.RegAllocOpts);
    if (!R.Ok) {
      std::fprintf(stderr, "regalloc failed: %s\n", R.Error.c_str());
      return 1;
    }
    if (Opts.Stats)
      std::fprintf(stderr,
                   "regalloc (%s/%s): %u regs used, %u spilled (%u loads, "
                   "%u stores), frame %u bytes\n",
                   allocatorName(Opts.RegAllocOpts.Allocator),
                   spillModelName(Opts.RegAllocOpts.SpillMode),
                   R.NumRegsUsed, R.NumSpilled, R.NumSpillLoads,
                   R.NumSpillStores, R.FrameBytes);
  }

  if (Opts.Dot)
    std::printf("%s", exportDot(*F).c_str());
  else
    std::printf("%s", printFunction(*F).c_str());

  if (Opts.Run) {
    ExecResult Ref = interpret(*Reference, Opts.RunArgs);
    ExecResult Res = Opts.Exec == "vm" ? executeVM(*F, Opts.RunArgs)
                                       : interpret(*F, Opts.RunArgs);
    if (Opts.Exec == "both") {
      // In-process differential check: the VM must reproduce the
      // interpreter's outcome on the transformed program exactly.
      ExecResult Vm = executeVM(*F, Opts.RunArgs);
      if (!Res.sameOutcome(Vm)) {
        std::fprintf(stderr,
                     "exec divergence: interp {status=%d ret=%llu "
                     "outputs=%zu error=%s} vm {status=%d ret=%llu "
                     "outputs=%zu error=%s}\n",
                     static_cast<int>(Res.Status),
                     static_cast<unsigned long long>(Res.RetValue),
                     Res.Outputs.size(), Res.Error.c_str(),
                     static_cast<int>(Vm.Status),
                     static_cast<unsigned long long>(Vm.RetValue),
                     Vm.Outputs.size(), Vm.Error.c_str());
        return 1;
      }
      std::fprintf(stderr,
                   "exec both: engines agree (interp %llu steps, vm %llu "
                   "instrs / %llu moves)\n",
                   static_cast<unsigned long long>(Res.Steps),
                   static_cast<unsigned long long>(Vm.Steps),
                   static_cast<unsigned long long>(Vm.DynMoves));
    }
    if (!Res.ok()) {
      std::fprintf(stderr, "run error%s: %s\n",
                   Res.timedOut() ? " (timeout)" : "", Res.Error.c_str());
      return 1;
    }
    std::printf("; run:");
    for (uint64_t V : Res.Outputs)
      std::printf(" out=%llu", static_cast<unsigned long long>(V));
    std::printf(" ret=%llu", static_cast<unsigned long long>(Res.RetValue));
    if (Ref.ok())
      std::printf(" (matches input program: %s)",
                  Ref.sameObservable(Res) ? "yes" : "NO");
    std::printf("\n");
  }

  if (Opts.Stats)
    StatsRegistry::instance().print(stderr);
  return 0;
}
