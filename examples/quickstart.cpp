//===- quickstart.cpp - Build, pin, translate, run ------------------------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
//
// Quickstart for the public API:
//   1. parse a mini-LAI function (or build one with IRBuilder),
//   2. convert it to optimized pruned SSA,
//   3. run the paper's pipeline (constraint collection, pinning-based
//      phi coalescing, out-of-pinned-SSA translation, cleanup
//      coalescing),
//   4. interpret before/after to demonstrate semantic preservation.
//
//===----------------------------------------------------------------------===//

#include "exec/Interpreter.h"
#include "ir/Clone.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "outofssa/MoveStats.h"
#include "outofssa/Pipeline.h"
#include "workloads/Suites.h"

#include <cstdio>

using namespace lao;

int main() {
  // A small kernel in non-SSA mini-LAI: a bounded loop with an
  // accumulator, a post-modified pointer walk (autoadd ties destination
  // and source to one register) and a call (arguments in R0/R1).
  const char *Source = R"(
func @quickstart {
entry:
  input %base, %seed
  %acc = mov %seed
  %p = mov %base
  %i = make 0
  %n = make 4
  jump head
head:
  %c = cmplt %i, %n
  branch %c, body, done
body:
  %v = load %p
  %acc = add %acc, %v
  %p = autoadd %p, 4
  %i = addi %i, 1
  jump head
done:
  %r = call @scale(%acc, %seed)
  output %r
  ret %r
}
)";

  std::string Error;
  auto F = parseFunction(Source, &Error);
  if (!F) {
    std::fprintf(stderr, "parse error: %s\n", Error.c_str());
    return 1;
  }

  // Non-SSA -> optimized pruned SSA (Cytron construction + copy
  // propagation + value numbering + DCE), as the LAO pipeline would.
  normalizeToOptimizedSSA(*F);
  std::printf("=== optimized SSA ===\n%s\n", printFunction(*F).c_str());

  // Keep the SSA version for the equivalence check.
  auto SSAVersion = cloneFunction(*F);

  // The paper's full configuration: SP + ABI constraint collection,
  // pinning-based phi coalescing, Leung & George translation, and the
  // aggressive cleanup coalescer.
  PipelineResult R = runPipeline(*F, pipelinePreset("Lphi,ABI+C"));
  std::printf("=== after out-of-SSA (Lphi,ABI+C) ===\n%s\n",
              printFunction(*F).c_str());
  std::printf("phi copies: %u, pin copies: %u, repairs: %u, elided: %u\n",
              R.Translate.NumPhiCopies, R.Translate.NumPinCopies,
              R.Translate.NumRepairs, R.Translate.NumElidedCopies);
  std::printf("residual moves: %u (weighted by 5^depth: %llu)\n",
              R.NumMoves, static_cast<unsigned long long>(R.WeightedMoves));

  // Same observable behaviour on both sides.
  for (uint64_t Seed : {7u, 99u}) {
    ExecResult Before = interpret(*SSAVersion, {0x3000, Seed});
    ExecResult After = interpret(*F, {0x3000, Seed});
    if (!Before.sameObservable(After)) {
      std::fprintf(stderr, "translation changed behaviour!\n");
      return 1;
    }
    std::printf("inputs (0x3000, %llu): ret=%llu, %zu outputs — match\n",
                static_cast<unsigned long long>(Seed),
                static_cast<unsigned long long>(After.RetValue),
                After.Outputs.size());
  }
  return 0;
}
