//===- machine_code.cpp - SSA to fully allocated machine code -------------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
//
// The complete backend story the paper's system sits inside: optimized
// SSA -> pinning-based out-of-SSA translation -> graph-coloring register
// allocation, at a register-file size given on the command line
// (default 8). Shows the paper's [LIM4] effect live: shrink the file and
// watch spill code appear while behaviour stays identical.
//
// Usage: machine_code [num-registers]
//
//===----------------------------------------------------------------------===//

#include "exec/Interpreter.h"
#include "ir/Clone.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "outofssa/Pipeline.h"
#include "regalloc/RegAlloc.h"
#include "workloads/Suites.h"

#include <cstdio>
#include <cstdlib>

using namespace lao;

int main(int argc, char **argv) {
  unsigned NumRegs = argc > 1 ? static_cast<unsigned>(
                                    std::strtoul(argv[1], nullptr, 10))
                              : 8;

  // A kernel with enough simultaneously live values to feel pressure.
  const char *Source = R"(
func @pressure {
entry:
  input %p, %q
  %a = load %p
  %p1 = autoadd %p, 4
  %b = load %p1
  %p2 = autoadd %p1, 4
  %c = load %p2
  %d = mul %a, %b
  %e = mul %b, %c
  %f = mul %a, %c
  %i = make 0
  %n = make 3
  %acc = make 0
  jump head
head:
  %t = add %d, %e
  %t2 = add %t, %f
  %t3 = xor %t2, %q
  %acc = add %acc, %t3
  %i = addi %i, 1
  %cc = cmplt %i, %n
  branch %cc, head, done
done:
  %r = call @finish(%acc, %d)
  output %r
  ret %r
}
)";

  std::string Error;
  auto F = parseFunction(Source, &Error);
  if (!F) {
    std::fprintf(stderr, "parse error: %s\n", Error.c_str());
    return 1;
  }
  normalizeToOptimizedSSA(*F);
  auto SSAVersion = cloneFunction(*F);

  runPipeline(*F, pipelinePreset("Lphi,ABI+C"));
  std::printf("=== after out-of-SSA (still virtual registers) ===\n%s\n",
              printFunction(*F).c_str());

  RegAllocOptions Opts;
  Opts.NumRegs = NumRegs;
  RegAllocResult R = allocateRegisters(*F, Opts);
  if (!R.Ok) {
    std::fprintf(stderr, "allocation failed: %s\n", R.Error.c_str());
    return 1;
  }
  std::printf("=== machine code, %u registers ===\n%s\n", NumRegs,
              printFunction(*F).c_str());
  std::printf("rounds: %u, spilled values: %u (loads %u, stores %u), "
              "registers used: %u, frame: %u bytes\n",
              R.NumRounds, R.NumSpilled, R.NumSpillLoads,
              R.NumSpillStores, R.NumRegsUsed, R.FrameBytes);

  ExecResult Before = interpret(*SSAVersion, {0x2000, 42});
  ExecResult After = interpret(*F, {0x2000, 42});
  std::printf("behaviour preserved: %s (ret %llu)\n",
              Before.sameObservable(After) ? "yes" : "NO",
              static_cast<unsigned long long>(After.RetValue));
  return Before.sameObservable(After) ? 0 : 1;
}
