//===- abi_constraints.cpp - The paper's Figure 1, end to end -------------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
//
// Walks the paper's Figure 1 — the motivating example of renaming
// constraints — through every phase, printing the pinned SSA, the
// reconstruction, and the pinning legality diagnostics for Figure 2's
// illegal SP pinning.
//
//===----------------------------------------------------------------------===//

#include "analysis/Dominators.h"
#include "exec/Interpreter.h"
#include "ir/CFG.h"
#include "ir/Clone.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "outofssa/Constraints.h"
#include "outofssa/LeungGeorge.h"
#include "outofssa/MoveStats.h"
#include "workloads/PaperExamples.h"

#include <cstdio>

using namespace lao;

int main() {
  // ---- Figure 1: ABI parameter passing + 2-operand constraints. ----
  auto F = makeFigure1();
  std::printf("=== Figure 1: pinned SSA code ===\n%s\n",
              printFunction(*F).c_str());

  auto Before = cloneFunction(*F);
  splitCriticalEdges(*F);
  collectSPConstraints(*F);
  collectABIConstraints(*F);

  CFG Cfg(*F);
  DominatorTree DT(Cfg);
  LivenessQuery LV(Cfg, DT);
  PinningContext Ctx(*F, Cfg, DT, LV);
  OutOfSSAStats Stats = translateOutOfSSA(*F, Ctx, Cfg);
  sequentializeParallelCopies(*F);

  std::printf("=== Figure 1: after out-of-pinned-SSA ===\n%s\n",
              printFunction(*F).c_str());
  std::printf("moves: %u, elided copies: %u, repairs: %u\n\n",
              countMoves(*F), Stats.NumElidedCopies, Stats.NumRepairs);

  ExecResult RB = interpret(*Before, {10, 0x2000});
  ExecResult RA = interpret(*F, {10, 0x2000});
  std::printf("behaviour preserved: %s (ret %llu)\n\n",
              RB.sameObservable(RA) ? "yes" : "NO",
              static_cast<unsigned long long>(RA.RetValue));

  // ---- Figure 2: the SP over-pinning the paper calls incorrect. ----
  auto Fig2 = makeFigure2();
  std::printf("=== Figure 2: over-constrained SP pinning ===\n%s\n",
              printFunction(*Fig2).c_str());
  std::printf("pinning legality diagnostics:\n");
  for (const std::string &D : verifyPinning(*Fig2))
    std::printf("  %s\n", D.c_str());
  return 0;
}
