//===- dsp_kernel.cpp - A DSP kernel through every configuration ----------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
//
// Builds a FIR-style kernel with the IRBuilder API (SP frame, autoadd
// pointer walks, a 2-operand `more`, a saturating branch), then runs it
// through every Table 1 configuration and prints the resulting move
// counts side by side — a one-binary miniature of the paper's results
// section.
//
//===----------------------------------------------------------------------===//

#include "exec/Interpreter.h"
#include "ir/Clone.h"
#include "ir/IRBuilder.h"
#include "ir/IRPrinter.h"
#include "outofssa/Pipeline.h"
#include "workloads/Suites.h"

#include <cstdio>

using namespace lao;

namespace {

/// FIR-flavoured kernel: acc += (load(p) * coef | K<<16); p post-inc.
std::unique_ptr<Function> buildKernel() {
  auto F = std::make_unique<Function>("fir16");
  BasicBlock *Entry = F->createBlock("entry");
  IRBuilder B(Entry);
  auto Params = B.input({"src", "coef"});

  RegId Sp = F->makeVirtual("sp");
  B.immOpTo(Sp, Opcode::SpAdjust, Target::SP, -32);
  RegId P = F->makeVirtual("p");
  B.movTo(P, Params[0]);
  RegId Acc = F->makeVirtual("acc");
  B.makeTo(Acc, 0);
  RegId I = F->makeVirtual("i");
  B.makeTo(I, 0);
  RegId N = F->makeVirtual("n");
  B.makeTo(N, 5);
  RegId Cap = F->makeVirtual("cap");
  B.makeTo(Cap, 1 << 24);

  BasicBlock *Head = F->createBlock("head");
  BasicBlock *Body = F->createBlock("body");
  BasicBlock *Sat = F->createBlock("sat");
  BasicBlock *Next = F->createBlock("next");
  BasicBlock *Done = F->createBlock("done");
  B.jump(Head);

  B.setBlock(Head);
  RegId C = F->makeVirtual("c");
  B.binaryTo(C, Opcode::CmpLT, I, N);
  B.branch(C, Body, Done);

  B.setBlock(Body);
  RegId V = B.load(P, "v");
  RegId Prod = B.mul(V, Params[1], "prod");
  RegId K = F->makeVirtual("k");
  B.immOpTo(K, Opcode::More, Prod, 0x2BFA); // 2-operand constrained.
  B.binaryTo(Acc, Opcode::Add, Acc, K);
  B.immOpTo(P, Opcode::AutoAdd, P, 4);      // Post-modified address.
  RegId Over = F->makeVirtual("over");
  B.binaryTo(Over, Opcode::CmpLT, Cap, Acc);
  B.branch(Over, Sat, Next);

  B.setBlock(Sat);
  B.movTo(Acc, Cap);
  B.jump(Next);

  B.setBlock(Next);
  B.immOpTo(I, Opcode::AddI, I, 1);
  B.jump(Head);

  B.setBlock(Done);
  B.store(Sp, Acc);
  RegId SpOut = F->makeVirtual("spout");
  B.immOpTo(SpOut, Opcode::SpAdjust, Sp, 32);
  B.output(Acc);
  B.ret(Acc);
  return F;
}

} // namespace

int main() {
  auto F = buildKernel();
  normalizeToOptimizedSSA(*F);
  std::printf("=== fir16, optimized SSA ===\n%s\n",
              printFunction(*F).c_str());

  static const char *const Presets[] = {
      "Lphi,ABI+C", "Sphi+LABI+C", "LABI+C", "C,naiveABI+C",
      "Lphi+C",     "Sphi+C",      "C",      "Lphi,ABI",
      "LABI",       "Sphi"};

  std::printf("%-14s %8s %10s %12s\n", "configuration", "moves",
              "weighted", "equivalent");
  for (const char *Preset : Presets) {
    auto Clone = cloneFunction(*F);
    PipelineResult R = runPipeline(*Clone, pipelinePreset(Preset));
    ExecResult Before = interpret(*F, {0x4000, 3});
    ExecResult After = interpret(*Clone, {0x4000, 3});
    std::printf("%-14s %8u %10llu %12s\n", Preset, R.NumMoves,
                static_cast<unsigned long long>(R.WeightedMoves),
                Before.sameObservable(After) ? "yes" : "NO");
  }

  std::printf("\nFinal code under the paper's configuration:\n");
  auto FinalF = cloneFunction(*F);
  runPipeline(*FinalF, pipelinePreset("Lphi,ABI+C"));
  std::printf("%s", printFunction(*FinalF).c_str());
  return 0;
}
