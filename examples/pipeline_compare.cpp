//===- pipeline_compare.cpp - Suite-level configuration comparison --------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
//
// Runs every Table 1 configuration over a chosen suite and prints totals
// with per-phase statistics — the programmatic version of skimming the
// paper's results section. Usage: pipeline_compare [suite-name]
// (default VALcc1; see `allSuites()` for names).
//
//===----------------------------------------------------------------------===//

#include "exec/Interpreter.h"
#include "ir/Clone.h"
#include "outofssa/Pipeline.h"
#include "workloads/Suites.h"

#include <cstdio>
#include <cstring>

using namespace lao;

int main(int argc, char **argv) {
  const char *SuiteName = argc > 1 ? argv[1] : "VALcc1";
  std::vector<Workload> Suite;
  for (const SuiteSpec &Spec : allSuites())
    if (std::strcmp(Spec.Name, SuiteName) == 0)
      Suite = Spec.Make();
  if (Suite.empty()) {
    std::fprintf(stderr, "unknown suite '%s'; try:", SuiteName);
    for (const SuiteSpec &Spec : allSuites())
      std::fprintf(stderr, " %s", Spec.Name);
    std::fprintf(stderr, "\n");
    return 1;
  }

  std::printf("suite %s: %zu functions\n\n", SuiteName, Suite.size());
  std::printf("%-14s %8s %9s %8s %8s %8s %8s %9s\n", "config", "moves",
              "weighted", "phi-cp", "pin-cp", "repairs", "elided",
              "coal.rm");

  static const char *const Presets[] = {
      "Lphi,ABI+C", "Sphi+LABI+C", "LABI+C", "C,naiveABI+C",
      "Lphi+C",     "Sphi+C",      "C",      "Lphi,ABI",
      "LABI",       "Sphi"};

  for (const char *Preset : Presets) {
    uint64_t Moves = 0, Weighted = 0, PhiCp = 0, PinCp = 0, Repairs = 0,
             Elided = 0, Removed = 0;
    unsigned Miscompiles = 0;
    for (const Workload &W : Suite) {
      auto F = cloneFunction(*W.F);
      PipelineResult R = runPipeline(*F, pipelinePreset(Preset));
      Moves += R.NumMoves;
      Weighted += R.WeightedMoves;
      PhiCp += R.Translate.NumPhiCopies;
      PinCp += R.Translate.NumPinCopies;
      Repairs += R.Translate.NumRepairs;
      Elided += R.Translate.NumElidedCopies;
      Removed += R.Coalescer.NumMovesRemoved;
      for (const auto &Args : W.Inputs)
        if (!interpret(*W.F, Args).sameObservable(interpret(*F, Args)))
          ++Miscompiles;
    }
    std::printf("%-14s %8llu %9llu %8llu %8llu %8llu %8llu %9llu",
                Preset, (unsigned long long)Moves,
                (unsigned long long)Weighted, (unsigned long long)PhiCp,
                (unsigned long long)PinCp, (unsigned long long)Repairs,
                (unsigned long long)Elided, (unsigned long long)Removed);
    if (Miscompiles)
      std::printf("  [%u MISCOMPILED input sets]", Miscompiles);
    std::printf("\n");
  }
  std::printf("\n(Sreedhar-based configurations are 'optimistic "
              "approximations', as in the paper; a MISCOMPILED marker "
              "reproduces its dedicated-register caveat.)\n");
  return 0;
}
