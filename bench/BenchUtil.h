//===- BenchUtil.h - Shared bench-table machinery ---------------*- C++ -*-===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the per-table bench binaries: suite caching, running
/// a pipeline configuration over a suite (serially or on a thread pool),
/// printing paper-style tables (first column absolute, remaining columns
/// as +/- deltas, exactly like Tables 2, 3 and 5 of the paper), and the
/// `--json=<file>` machine-readable output mode.
///
/// Every binary prints its table(s) on startup, optionally writes its
/// BENCH_<table>.json, and then runs the registered google-benchmark
/// timings.
///
/// Determinism: the parallel runOnSuite only parallelizes the per-function
/// pipeline executions; per-function results land in an index-addressed
/// vector and the SuiteTotals reduction folds them in suite order, so the
/// measurement fields (moves, weighted moves, merges, counters) are
/// bit-identical to the serial path — only the wall-clock fields differ
/// run to run. ObservabilityTests guards this.
///
//===----------------------------------------------------------------------===//

#ifndef LAO_BENCH_BENCHUTIL_H
#define LAO_BENCH_BENCHUTIL_H

#include "exec/Interpreter.h"
#include "ir/Clone.h"
#include "outofssa/Pipeline.h"
#include "support/Json.h"
#include "support/Stats.h"
#include "support/ThreadPool.h"
#include "workloads/Suites.h"

#include <cstdio>
#include <cstring>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace lao {
namespace bench {

/// Lazily built, cached copies of all suites.
inline const std::vector<std::pair<std::string, std::vector<Workload>>> &
suites() {
  static std::vector<std::pair<std::string, std::vector<Workload>>> Cache;
  if (Cache.empty())
    for (const SuiteSpec &Spec : allSuites())
      Cache.push_back({Spec.Name, Spec.Make()});
  return Cache;
}

/// The pool the bench binaries share. Created on first use; sized to the
/// machine.
inline ThreadPool &sharedPool() {
  static ThreadPool Pool;
  return Pool;
}

/// Aggregate outcome of a configuration over one suite.
struct SuiteTotals {
  uint64_t Moves = 0;
  uint64_t WeightedMoves = 0;
  uint64_t MovesBeforeCoalesce = 0;
  uint64_t CoalescerMerges = 0;
  double Seconds = 0.0;
  double CoalesceSeconds = 0.0;
  /// Per-phase seconds summed over the suite, pipeline phase order.
  TimerGroup PerPass;
  /// StatsRegistry movement during the run ("pass.name" -> delta).
  StatsSnapshot Counters;
};

/// Runs \p Config on a fresh clone of one workload; optionally verifies
/// interpreter equivalence and aborts loudly on a miscompile (used to
/// keep the bench numbers trustworthy).
inline PipelineResult runOnWorkload(const Workload &W,
                                    const PipelineConfig &Config,
                                    bool Check) {
  auto F = cloneFunction(*W.F);
  PipelineResult R = runPipeline(*F, Config);
  if (Check)
    for (const auto &Args : W.Inputs) {
      ExecResult Before = interpret(*W.F, Args);
      ExecResult After = interpret(*F, Args);
      if (!Before.sameObservable(After)) {
        std::fprintf(stderr,
                     "MISCOMPILE: %s under %s (inputs differ in "
                     "observable trace)\n",
                     W.Name.c_str(), Config.Name.c_str());
        std::abort();
      }
    }
  return R;
}

/// Runs \p Config on a fresh clone of every suite member. Functions are
/// independent, so when \p Pool is non-null and has more than one worker
/// they run concurrently; the reduction below is always in suite order
/// (see the determinism note in the file comment). Pass Pool = nullptr
/// for the strictly serial path.
inline SuiteTotals runOnSuite(const std::vector<Workload> &Suite,
                              const PipelineConfig &Config,
                              bool Check = false,
                              ThreadPool *Pool = &sharedPool()) {
  StatsSnapshot Before = StatsRegistry::instance().snapshot();
  std::vector<PipelineResult> Results(Suite.size());
  if (Pool && Pool->numThreads() > 1)
    Pool->parallelFor(Suite.size(), [&](size_t I) {
      Results[I] = runOnWorkload(Suite[I], Config, Check);
    });
  else
    for (size_t I = 0; I < Suite.size(); ++I)
      Results[I] = runOnWorkload(Suite[I], Config, Check);

  SuiteTotals Totals;
  for (const PipelineResult &R : Results) {
    Totals.Moves += R.NumMoves;
    Totals.WeightedMoves += R.WeightedMoves;
    Totals.MovesBeforeCoalesce += R.MovesBeforeCoalesce;
    Totals.CoalescerMerges += R.Coalescer.NumMerges;
    Totals.Seconds += R.Seconds;
    Totals.CoalesceSeconds += R.CoalesceSeconds;
    Totals.PerPass.addAll(R.Timings);
  }
  Totals.Counters =
      StatsRegistry::delta(Before, StatsRegistry::instance().snapshot());
  return Totals;
}

/// Collects every (suite, config) measurement a bench binary makes for
/// its printed tables, so the `--json` output is written from the exact
/// same numbers. Keyed by (suite name, config name): a second request
/// returns the cached record instead of re-running, which also halves
/// table startup time when two columns share a configuration.
class BenchReport {
public:
  const SuiteTotals &totals(const std::string &SuiteName,
                            const std::vector<Workload> &Suite,
                            const PipelineConfig &Config) {
    std::string Key = SuiteName + '\0' + Config.Name;
    auto It = Index.find(Key);
    if (It != Index.end())
      return Records[It->second].Totals;
    Records.push_back({SuiteName, Config.Name, runOnSuite(Suite, Config)});
    Index.emplace(std::move(Key), Records.size() - 1);
    return Records.back().Totals;
  }

  /// Renders all recorded measurements as one JSON document:
  ///
  ///   {"bench": <name>, "records": [
  ///     {"suite": ..., "config": ..., "moves": ..., "weighted_moves": ...,
  ///      "moves_before_coalesce": ..., "coalescer_merges": ...,
  ///      "seconds": ..., "coalesce_seconds": ...,
  ///      "per_pass_seconds": {...}, "counters": {...}}, ...]}
  ///
  /// All keys are always present; per_pass_seconds has one entry per
  /// pipeline phase that ran, in phase order; counters is sorted by name.
  /// With \p IncludeTimings false the wall-clock fields (seconds,
  /// coalesce_seconds, per_pass_seconds) are omitted, leaving only the
  /// deterministic measurements — two runs of the same binary must then
  /// produce byte-identical strings (ObservabilityTests relies on this).
  std::string jsonString(const std::string &BenchName,
                         bool IncludeTimings = true) const {
    JsonWriter W;
    W.beginObject();
    W.key("bench").value(BenchName);
    W.key("records").beginArray();
    for (const Record &R : Records) {
      W.beginObject();
      W.key("suite").value(R.Suite);
      W.key("config").value(R.Config);
      W.key("moves").value(R.Totals.Moves);
      W.key("weighted_moves").value(R.Totals.WeightedMoves);
      W.key("moves_before_coalesce").value(R.Totals.MovesBeforeCoalesce);
      W.key("coalescer_merges").value(R.Totals.CoalescerMerges);
      if (IncludeTimings) {
        W.key("seconds").value(R.Totals.Seconds);
        W.key("coalesce_seconds").value(R.Totals.CoalesceSeconds);
        W.key("per_pass_seconds").beginObject();
        for (const auto &[Phase, S] : R.Totals.PerPass.entries())
          W.key(Phase).value(S);
        W.endObject();
      }
      W.key("counters").beginObject();
      for (const auto &[Name, V] : R.Totals.Counters)
        W.key(Name).value(V);
      W.endObject();
      W.endObject();
    }
    W.endArray();
    W.endObject();
    return W.str();
  }

  /// Writes jsonString(BenchName) to \p Path.
  void writeJson(const std::string &Path, const std::string &BenchName) const {
    std::FILE *Out = std::fopen(Path.c_str(), "w");
    if (!Out) {
      std::fprintf(stderr, "cannot write '%s'\n", Path.c_str());
      std::exit(1);
    }
    std::fprintf(Out, "%s\n", jsonString(BenchName).c_str());
    std::fclose(Out);
  }

private:
  struct Record {
    std::string Suite;
    std::string Config;
    SuiteTotals Totals;
  };
  std::vector<Record> Records;
  std::map<std::string, size_t> Index;
};

/// Extracts a leading `--json=<file>` from the argument list (so the
/// remaining arguments can go straight to benchmark::Initialize).
/// Returns the file path, or "" when the flag is absent.
inline std::string extractJsonPath(int &Argc, char **Argv) {
  std::string Path;
  int W = 1;
  for (int K = 1; K < Argc; ++K) {
    if (std::strncmp(Argv[K], "--json=", 7) == 0)
      Path = Argv[K] + 7;
    else
      Argv[W++] = Argv[K];
  }
  Argc = W;
  return Path;
}

/// One column of a paper-style table. Measure receives the suite's name
/// and members; implementations route through a BenchReport so the JSON
/// output matches the table exactly.
struct Column {
  std::string Header;
  std::function<uint64_t(const std::string &, const std::vector<Workload> &)>
      Measure;
};

/// Prints a table in the paper's format: the first column absolute, the
/// others as signed deltas against it.
inline void printDeltaTable(const std::string &Title,
                            const std::vector<Column> &Columns,
                            const char *Footnote = nullptr) {
  std::printf("\n%s\n", Title.c_str());
  std::printf("%-14s", "benchmark");
  for (const Column &C : Columns)
    std::printf("%16s", C.Header.c_str());
  std::printf("\n");
  for (const auto &[Name, Suite] : suites()) {
    std::printf("%-14s", Name.c_str());
    uint64_t Base = 0;
    for (size_t K = 0; K < Columns.size(); ++K) {
      uint64_t V = Columns[K].Measure(Name, Suite);
      if (K == 0) {
        Base = V;
        std::printf("%16llu", static_cast<unsigned long long>(V));
      } else {
        long long Delta = static_cast<long long>(V) -
                          static_cast<long long>(Base);
        std::printf("%+16lld", Delta);
      }
    }
    std::printf("\n");
  }
  if (Footnote)
    std::printf("%s\n", Footnote);
  std::fflush(stdout);
}

} // namespace bench
} // namespace lao

#endif // LAO_BENCH_BENCHUTIL_H
