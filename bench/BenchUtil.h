//===- BenchUtil.h - Shared bench-table machinery ---------------*- C++ -*-===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the per-table bench binaries: suite caching, running
/// a pipeline configuration over a suite, and printing paper-style tables
/// (first column absolute, remaining columns as +/- deltas, exactly like
/// Tables 2, 3 and 5 of the paper).
///
/// Every binary prints its table(s) on startup and then runs the
/// registered google-benchmark timings.
///
//===----------------------------------------------------------------------===//

#ifndef LAO_BENCH_BENCHUTIL_H
#define LAO_BENCH_BENCHUTIL_H

#include "exec/Interpreter.h"
#include "ir/Clone.h"
#include "outofssa/Pipeline.h"
#include "workloads/Suites.h"

#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace lao {
namespace bench {

/// Lazily built, cached copies of all suites.
inline const std::vector<std::pair<std::string, std::vector<Workload>>> &
suites() {
  static std::vector<std::pair<std::string, std::vector<Workload>>> Cache;
  if (Cache.empty())
    for (const SuiteSpec &Spec : allSuites())
      Cache.push_back({Spec.Name, Spec.Make()});
  return Cache;
}

/// Aggregate outcome of a configuration over one suite.
struct SuiteTotals {
  uint64_t Moves = 0;
  uint64_t WeightedMoves = 0;
  uint64_t MovesBeforeCoalesce = 0;
  uint64_t CoalescerMerges = 0;
  double Seconds = 0.0;
  double CoalesceSeconds = 0.0;
};

/// Runs \p Config on a fresh clone of every suite member. When \p Check
/// is true, also verifies interpreter equivalence and aborts loudly on a
/// miscompile (used to keep the bench numbers trustworthy).
inline SuiteTotals runOnSuite(const std::vector<Workload> &Suite,
                              const PipelineConfig &Config,
                              bool Check = false) {
  SuiteTotals Totals;
  for (const Workload &W : Suite) {
    auto F = cloneFunction(*W.F);
    PipelineResult R = runPipeline(*F, Config);
    Totals.Moves += R.NumMoves;
    Totals.WeightedMoves += R.WeightedMoves;
    Totals.MovesBeforeCoalesce += R.MovesBeforeCoalesce;
    Totals.CoalescerMerges += R.Coalescer.NumMerges;
    Totals.Seconds += R.Seconds;
    Totals.CoalesceSeconds += R.CoalesceSeconds;
    if (Check)
      for (const auto &Args : W.Inputs) {
        ExecResult Before = interpret(*W.F, Args);
        ExecResult After = interpret(*F, Args);
        if (!Before.sameObservable(After)) {
          std::fprintf(stderr,
                       "MISCOMPILE: %s under %s (inputs differ in "
                       "observable trace)\n",
                       W.Name.c_str(), Config.Name.c_str());
          std::abort();
        }
      }
  }
  return Totals;
}

/// One column of a paper-style table.
struct Column {
  std::string Header;
  std::function<uint64_t(const std::vector<Workload> &)> Measure;
};

/// Prints a table in the paper's format: the first column absolute, the
/// others as signed deltas against it.
inline void printDeltaTable(const std::string &Title,
                            const std::vector<Column> &Columns,
                            const char *Footnote = nullptr) {
  std::printf("\n%s\n", Title.c_str());
  std::printf("%-14s", "benchmark");
  for (const Column &C : Columns)
    std::printf("%16s", C.Header.c_str());
  std::printf("\n");
  for (const auto &[Name, Suite] : suites()) {
    std::printf("%-14s", Name.c_str());
    uint64_t Base = 0;
    for (size_t K = 0; K < Columns.size(); ++K) {
      uint64_t V = Columns[K].Measure(Suite);
      if (K == 0) {
        Base = V;
        std::printf("%16llu", static_cast<unsigned long long>(V));
      } else {
        long long Delta = static_cast<long long>(V) -
                          static_cast<long long>(Base);
        std::printf("%+16lld", Delta);
      }
    }
    std::printf("\n");
  }
  if (Footnote)
    std::printf("%s\n", Footnote);
  std::fflush(stdout);
}

} // namespace bench
} // namespace lao

#endif // LAO_BENCH_BENCHUTIL_H
