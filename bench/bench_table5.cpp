//===- bench_table5.cpp - Paper Table 5 reproduction -------------------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
//
// Table 5: "Weighted count of move instructions on variants of our
// algorithm." Moves weigh 5^depth (a static 5-iterations-per-loop
// approximation). Columns: base (the full algorithm without the cleanup
// coalescer, absolute), depth (Algorithm 3: per-depth affinity graphs),
// opt / pess (Algorithm 4: optimistic / pessimistic interference).
// Expected shape: depth approximately neutral, opt slightly worse,
// pess dramatically worse.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

using namespace lao;
using namespace lao::bench;

namespace {

BenchReport Report;

PipelineConfig variantConfig(const std::string &Variant) {
  PipelineConfig C = pipelinePreset("Lphi,ABI");
  C.Name = "Lphi,ABI(" + Variant + ")";
  if (Variant == "depth")
    C.PhiOpts.DepthConstrained = true;
  else if (Variant == "opt")
    C.Mode = InterferenceMode::Optimistic;
  else if (Variant == "pess")
    C.Mode = InterferenceMode::Pessimistic;
  return C;
}

uint64_t weightedOf(const std::string &Name,
                    const std::vector<Workload> &Suite,
                    const std::string &Variant) {
  return Report.totals(Name, Suite, variantConfig(Variant)).WeightedMoves;
}

void registerBenchmarks() {
  for (const auto &[Name, Suite] : suites()) {
    (void)Suite;
    for (const char *Variant : {"base", "depth", "opt", "pess"})
      benchmark::RegisterBenchmark(
          ("Table5/" + Name + "/" + Variant).c_str(),
          [Name = Name, Variant](benchmark::State &S) {
            const std::vector<Workload> *Found = nullptr;
            for (const auto &[N, Members] : suites())
              if (N == Name)
                Found = &Members;
            for (auto _ : S) {
              SuiteTotals T = runOnSuite(*Found, variantConfig(Variant));
              benchmark::DoNotOptimize(T.WeightedMoves);
            }
          });
  }
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath = extractJsonPath(argc, argv);
  printDeltaTable(
      "Table 5: 5^depth-weighted move count, variants of the algorithm",
      {{"base",
        [](const auto &N, const auto &S) { return weightedOf(N, S, "base"); }},
       {"depth",
        [](const auto &N, const auto &S) { return weightedOf(N, S, "depth"); }},
       {"opt",
        [](const auto &N, const auto &S) { return weightedOf(N, S, "opt"); }},
       {"pess", [](const auto &N, const auto &S) {
          return weightedOf(N, S, "pess");
        }}});
  if (!JsonPath.empty())
    Report.writeJson(JsonPath, "table5");

  registerBenchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
