//===- bench_table4.cpp - Paper Table 4 reproduction -------------------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
//
// Table 4: "Order of magnitude" — the moves a later repeated-coalescing
// phase would have to chew through if phis and the ABI were lowered
// naively, versus the residual of the pinned translation. Columns:
// Lphi,ABI (absolute residual, no cleanup), Sphi (ABI lowered naively:
// remaining "ABI moves"), LABI (phis replaced without coalescing:
// remaining "phi moves"). The paper's point [CC3]: the repeated
// coalescer's cost is proportional to these counts.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

using namespace lao;
using namespace lao::bench;

namespace {

BenchReport Report;

uint64_t movesOf(const std::string &Name, const std::vector<Workload> &Suite,
                 const char *Preset) {
  return Report.totals(Name, Suite, pipelinePreset(Preset)).Moves;
}

void registerBenchmarks() {
  for (const auto &[Name, Suite] : suites()) {
    (void)Suite;
    for (const char *Preset : {"Lphi,ABI", "Sphi", "LABI"})
      benchmark::RegisterBenchmark(
          ("Table4/" + Name + "/" + Preset).c_str(),
          [Name = Name, Preset](benchmark::State &S) {
            const std::vector<Workload> *Found = nullptr;
            for (const auto &[N, Members] : suites())
              if (N == Name)
                Found = &Members;
            for (auto _ : S) {
              SuiteTotals T = runOnSuite(*Found, pipelinePreset(Preset));
              benchmark::DoNotOptimize(T.Moves);
            }
          });
  }
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath = extractJsonPath(argc, argv);
  printDeltaTable(
      "Table 4: moves left for a post coalescer under naive lowering",
      {{"Lphi,ABI",
        [](const auto &N, const auto &S) { return movesOf(N, S, "Lphi,ABI"); }},
       {"Sphi(ABI mov)",
        [](const auto &N, const auto &S) { return movesOf(N, S, "Sphi"); }},
       {"LABI(phi mov)",
        [](const auto &N, const auto &S) { return movesOf(N, S, "LABI"); }}},
      "(columns 2 and 3 are deltas: the extra ABI moves left by Sphi and\n"
      " the extra phi moves left by LABI, as in the paper's Table 4)");
  if (!JsonPath.empty())
    Report.writeJson(JsonPath, "table4");

  registerBenchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
