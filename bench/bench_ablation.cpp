//===- bench_ablation.cpp - Design-choice ablations ----------------------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
//
// Ablations of the design choices DESIGN.md calls out, beyond the
// paper's own Table 5 variants:
//
//  * pruning heuristic: the paper's weighted greedy vs an arbitrary
//    positive-weight pick;
//  * physical-class merging threshold (Figure 8 partial coalescing):
//    always / strong-affinity-only (default) / never;
//  * the [LIM2] use-pin pre-pass on vs off.
//
// All measured as residual moves after the full pipeline with cleanup
// coalescing, so the numbers answer "does the decision matter once an
// aggressive coalescer runs afterwards".
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

using namespace lao;
using namespace lao::bench;

namespace {

BenchReport Report;

struct Ablation {
  const char *Name;
  PipelineConfig Config;
};

std::vector<Ablation> ablations() {
  std::vector<Ablation> List;
  {
    Ablation A{"paper-default", pipelinePreset("Lphi,ABI+C")};
    List.push_back(A);
  }
  {
    Ablation A{"prune-firstfound", pipelinePreset("Lphi,ABI+C")};
    A.Config.PhiOpts.Heuristic = PruneHeuristic::FirstFound;
    List.push_back(A);
  }
  {
    Ablation A{"phys-merge-always", pipelinePreset("Lphi,ABI+C")};
    A.Config.PhiOpts.PhysMergeMinMult = 1;
    List.push_back(A);
  }
  {
    Ablation A{"phys-merge-never", pipelinePreset("Lphi,ABI+C")};
    A.Config.PhiOpts.PhysMergeMinMult = ~0u;
    List.push_back(A);
  }
  {
    Ablation A{"lim2-usepin-prepass", pipelinePreset("Lphi,ABI+C")};
    A.Config.PhiOpts.UsePinAffinity = true;
    List.push_back(A);
  }
  // Distinct config names: the ablations differ in options, not preset,
  // and the BenchReport cache and JSON records key on the name.
  for (Ablation &A : List)
    A.Config.Name = A.Name;
  return List;
}

void printAblationTable() {
  std::printf("\nAblation: residual moves after full pipeline (+C)\n");
  std::printf("%-14s", "benchmark");
  for (const Ablation &A : ablations())
    std::printf("%20s", A.Name);
  std::printf("\n");
  for (const auto &[Name, Suite] : suites()) {
    std::printf("%-14s", Name.c_str());
    uint64_t Base = 0;
    bool First = true;
    for (const Ablation &A : ablations()) {
      uint64_t Moves = Report.totals(Name, Suite, A.Config).Moves;
      if (First) {
        Base = Moves;
        std::printf("%20llu", static_cast<unsigned long long>(Moves));
        First = false;
      } else {
        std::printf("%+20lld", static_cast<long long>(Moves) -
                                   static_cast<long long>(Base));
      }
    }
    std::printf("\n");
  }
  std::fflush(stdout);
}

void registerBenchmarks() {
  for (const auto &[Name, Suite] : suites()) {
    (void)Suite;
    for (const Ablation &A : ablations())
      benchmark::RegisterBenchmark(
          ("Ablation/" + Name + "/" + A.Name).c_str(),
          [Name = Name, Config = A.Config](benchmark::State &S) {
            const std::vector<Workload> *Found = nullptr;
            for (const auto &[N, Members] : suites())
              if (N == Name)
                Found = &Members;
            for (auto _ : S) {
              SuiteTotals T = runOnSuite(*Found, Config);
              benchmark::DoNotOptimize(T.Moves);
            }
          });
  }
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath = extractJsonPath(argc, argv);
  printAblationTable();
  if (!JsonPath.empty())
    Report.writeJson(JsonPath, "ablation");
  registerBenchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
