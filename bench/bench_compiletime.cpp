//===- bench_compiletime.cpp - Section 5 compile-time discussion --------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
//
// The paper's compile-time argument ([CC3] and the Table 4 discussion):
// the repeated register coalescer's cost is proportional to the number
// of move instructions it has to process, so handling coalescing at the
// SSA level shrinks the expensive phase. This bench (a) prints the
// coalescer's share of pipeline time and its merge counts for the pinned
// vs naive configurations, and (b) registers google-benchmark timings of
// the full pipelines.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

using namespace lao;
using namespace lao::bench;

namespace {

BenchReport Report;

void printCompileTimeTable() {
  std::printf("\nCompile-time proxy: aggressive-coalescer workload\n");
  std::printf("%-14s %22s %22s\n", "benchmark", "pinned(merges/moves-in)",
              "naive(merges/moves-in)");
  for (const auto &[Name, Suite] : suites()) {
    SuiteTotals Pinned =
        Report.totals(Name, Suite, pipelinePreset("Lphi,ABI+C"));
    SuiteTotals Naive =
        Report.totals(Name, Suite, pipelinePreset("C,naiveABI+C"));
    std::printf("%-14s %11llu /%9llu %11llu /%9llu\n", Name.c_str(),
                static_cast<unsigned long long>(Pinned.CoalescerMerges),
                static_cast<unsigned long long>(Pinned.MovesBeforeCoalesce),
                static_cast<unsigned long long>(Naive.CoalescerMerges),
                static_cast<unsigned long long>(Naive.MovesBeforeCoalesce));
  }
  std::fflush(stdout);
}

void registerBenchmarks() {
  for (const auto &[Name, Suite] : suites()) {
    (void)Suite;
    for (const char *Preset :
         {"Lphi,ABI+C", "LABI+C", "C,naiveABI+C", "Sphi+LABI+C"})
      benchmark::RegisterBenchmark(
          ("Pipeline/" + Name + "/" + Preset).c_str(),
          [Name = Name, Preset](benchmark::State &S) {
            const std::vector<Workload> *Found = nullptr;
            for (const auto &[N, Members] : suites())
              if (N == Name)
                Found = &Members;
            double CoalesceSeconds = 0;
            uint64_t Runs = 0;
            for (auto _ : S) {
              SuiteTotals T = runOnSuite(*Found, pipelinePreset(Preset));
              CoalesceSeconds += T.CoalesceSeconds;
              ++Runs;
              benchmark::DoNotOptimize(T.Moves);
            }
            S.counters["coalesce_s"] =
                benchmark::Counter(Runs ? CoalesceSeconds / Runs : 0);
          });
  }
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath = extractJsonPath(argc, argv);
  printCompileTimeTable();
  if (!JsonPath.empty())
    Report.writeJson(JsonPath, "compiletime");
  registerBenchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
