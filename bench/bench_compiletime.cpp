//===- bench_compiletime.cpp - Section 5 compile-time discussion --------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
//
// The paper's compile-time argument ([CC3] and the Table 4 discussion):
// the repeated register coalescer's cost is proportional to the number
// of move instructions it has to process, so handling coalescing at the
// SSA level shrinks the expensive phase. This bench (a) prints the
// coalescer's share of pipeline time and its merge counts for the pinned
// vs naive configurations, and (b) registers google-benchmark timings of
// the full pipelines.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "workloads/Generator.h"

#include <benchmark/benchmark.h>

using namespace lao;
using namespace lao::bench;

namespace {

BenchReport Report;

//===----------------------------------------------------------------------===//
// Scaling sweep: generated workloads of increasing size
//===----------------------------------------------------------------------===//

/// One point of the compile-time scaling sweep: \p Count generated
/// functions of \p NumStatements top-level statements each.
struct ScaleSpec {
  const char *Name;
  unsigned NumStatements;
  unsigned MaxNesting;
  unsigned Count;
};

constexpr ScaleSpec ScaleSweep[] = {
    {"scale_n40", 40, 2, 12},
    {"scale_n120", 120, 3, 8},
    {"scale_n320", 320, 3, 4},
    {"scale_n640", 640, 4, 2},
    {"scale_n1280", 1280, 4, 1},
};

/// Builds the suite for one sweep point: deterministic seeds, normalized
/// to the same optimized pruned SSA the named suites ship. No interpreter
/// inputs — these exist to measure compile time, not to check semantics
/// (the named suites and tests cover that).
std::vector<Workload> makeScaleSuite(const ScaleSpec &Spec) {
  std::vector<Workload> Suite;
  for (unsigned I = 0; I < Spec.Count; ++I) {
    GeneratorParams P;
    P.Seed = 0x5CA1E000 + 7919 * I + Spec.NumStatements;
    P.NumStatements = Spec.NumStatements;
    P.MaxNesting = Spec.MaxNesting;
    P.CallPercent = 20; // ABI pressure grows the coalescer workload.
    Workload W;
    W.Name = std::string(Spec.Name) + "_f" + std::to_string(I);
    W.F = generateProgram(P, W.Name);
    normalizeToOptimizedSSA(*W.F);
    Suite.push_back(std::move(W));
  }
  return Suite;
}

void printScalingTable() {
  std::printf("\nCompile-time scaling sweep (generated workloads)\n");
  std::printf("%-12s %7s %7s %14s %14s %8s\n", "point", "blocks", "vars",
              "pinned-s", "naive-s", "ratio");
  for (const ScaleSpec &Spec : ScaleSweep) {
    std::vector<Workload> Suite = makeScaleSuite(Spec);
    size_t Blocks = 0, Vars = 0;
    for (const Workload &W : Suite) {
      Blocks += W.F->numBlocks();
      Vars += W.F->numValues();
    }
    SuiteTotals Pinned =
        Report.totals(Spec.Name, Suite, pipelinePreset("Lphi,ABI+C"));
    SuiteTotals Naive =
        Report.totals(Spec.Name, Suite, pipelinePreset("C,naiveABI+C"));
    std::printf("%-12s %7zu %7zu %14.6f %14.6f %8.2f\n", Spec.Name, Blocks,
                Vars, Pinned.Seconds, Naive.Seconds,
                Pinned.Seconds > 0 ? Naive.Seconds / Pinned.Seconds : 0.0);
  }
  std::fflush(stdout);
}

void printCompileTimeTable() {
  std::printf("\nCompile-time proxy: aggressive-coalescer workload\n");
  std::printf("%-14s %22s %22s\n", "benchmark", "pinned(merges/moves-in)",
              "naive(merges/moves-in)");
  for (const auto &[Name, Suite] : suites()) {
    SuiteTotals Pinned =
        Report.totals(Name, Suite, pipelinePreset("Lphi,ABI+C"));
    SuiteTotals Naive =
        Report.totals(Name, Suite, pipelinePreset("C,naiveABI+C"));
    std::printf("%-14s %11llu /%9llu %11llu /%9llu\n", Name.c_str(),
                static_cast<unsigned long long>(Pinned.CoalescerMerges),
                static_cast<unsigned long long>(Pinned.MovesBeforeCoalesce),
                static_cast<unsigned long long>(Naive.CoalescerMerges),
                static_cast<unsigned long long>(Naive.MovesBeforeCoalesce));
  }
  std::fflush(stdout);
}

void registerBenchmarks() {
  for (const auto &[Name, Suite] : suites()) {
    (void)Suite;
    for (const char *Preset :
         {"Lphi,ABI+C", "LABI+C", "C,naiveABI+C", "Sphi+LABI+C"})
      benchmark::RegisterBenchmark(
          ("Pipeline/" + Name + "/" + Preset).c_str(),
          [Name = Name, Preset](benchmark::State &S) {
            const std::vector<Workload> *Found = nullptr;
            for (const auto &[N, Members] : suites())
              if (N == Name)
                Found = &Members;
            double CoalesceSeconds = 0;
            uint64_t Runs = 0;
            for (auto _ : S) {
              SuiteTotals T = runOnSuite(*Found, pipelinePreset(Preset));
              CoalesceSeconds += T.CoalesceSeconds;
              ++Runs;
              benchmark::DoNotOptimize(T.Moves);
            }
            S.counters["coalesce_s"] =
                benchmark::Counter(Runs ? CoalesceSeconds / Runs : 0);
          });
  }
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath = extractJsonPath(argc, argv);
  printCompileTimeTable();
  printScalingTable();
  if (!JsonPath.empty())
    Report.writeJson(JsonPath, "compiletime");
  registerBenchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
