//===- bench_regpressure.cpp - The paper's [LIM4] made measurable ---------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
//
// The paper's [LIM4]: "in the case of strong register pressure, the
// problem becomes different: coalescing (or splitting) variables has a
// strong impact on the colorability of the interference graph during
// the register allocator phase" — listed as out of scope there. This
// bench runs every allocator strategy x spill model combination after
// each out-of-SSA configuration at several register-file sizes and
// reports spills plus the static count of spill accesses, answering:
// does the pinning-based coalescing pay for its move savings with
// spills — and does the answer depend on the allocator asking?
//
// Record key shape (BENCH_regpressure.json): (suite, config, num_regs,
// allocator, spill_mode) — scripts/check_bench_regression.py gates the
// chaitin-briggs/spill-everywhere records bit-identically.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "regalloc/RegAlloc.h"

#include <benchmark/benchmark.h>

using namespace lao;
using namespace lao::bench;

namespace {

struct PressureTotals {
  uint64_t Spills = 0;
  uint64_t SpillAccesses = 0; // loads + stores inserted
  unsigned Failures = 0;      // functions the allocator gave up on
};

PressureTotals allocateSuite(const std::vector<Workload> &Suite,
                             const char *Preset, RegAllocOptions Opts) {
  // Same deterministic shape as runOnSuite: allocate each function
  // independently (in parallel when the machine allows), reduce in suite
  // order.
  std::vector<RegAllocResult> Results(Suite.size());
  auto AllocOne = [&](size_t I) {
    auto F = cloneFunction(*Suite[I].F);
    runPipeline(*F, pipelinePreset(Preset));
    Results[I] = allocateRegisters(*F, Opts);
  };
  if (sharedPool().numThreads() > 1)
    sharedPool().parallelFor(Suite.size(), AllocOne);
  else
    for (size_t I = 0; I < Suite.size(); ++I)
      AllocOne(I);

  PressureTotals T;
  for (const RegAllocResult &R : Results) {
    if (!R.Ok) {
      ++T.Failures;
      continue;
    }
    T.Spills += R.NumSpilled;
    T.SpillAccesses += R.NumSpillLoads + R.NumSpillStores;
  }
  return T;
}

/// The strategy-tier matrix measured below. chaitin-briggs +
/// spill-everywhere comes first: its records are the historically
/// committed baseline and must stay bit-identical.
const RegAllocOptions Combos[] = {
    {AllocatorKind::ChaitinBriggs, SpillModelKind::SpillEverywhere},
    {AllocatorKind::ChaitinBriggs, SpillModelKind::LoadStoreOpt},
    {AllocatorKind::Chordal, SpillModelKind::SpillEverywhere},
    {AllocatorKind::Chordal, SpillModelKind::LoadStoreOpt},
};

/// JSON records for --json: one per (combo, num_regs, suite, config)
/// cell of the printed tables, same numbers (recorded while printing).
struct PressureRecord {
  std::string Suite;
  std::string Config;
  unsigned NumRegs;
  std::string Allocator;
  std::string SpillMode;
  PressureTotals Totals;
};
std::vector<PressureRecord> Records;

void printPressureTables() {
  for (const RegAllocOptions &Combo : Combos) {
    for (unsigned NumRegs : {6u, 8u, 12u}) {
      std::printf("\nRegister pressure [%s/%s]: spills (spill "
                  "loads+stores) with %u registers\n",
                  allocatorName(Combo.Allocator),
                  spillModelName(Combo.SpillMode), NumRegs);
      std::printf("%-14s %22s %22s %22s\n", "benchmark", "Lphi,ABI+C",
                  "LABI+C", "C,naiveABI+C");
      for (const auto &[Name, Suite] : suites()) {
        std::printf("%-14s", Name.c_str());
        for (const char *Preset : {"Lphi,ABI+C", "LABI+C", "C,naiveABI+C"}) {
          RegAllocOptions Opts = Combo;
          Opts.NumRegs = NumRegs;
          PressureTotals T = allocateSuite(Suite, Preset, Opts);
          Records.push_back({Name, Preset, NumRegs,
                             allocatorName(Combo.Allocator),
                             spillModelName(Combo.SpillMode), T});
          std::string Cell =
              std::to_string(T.Spills) + " (" +
              std::to_string(T.SpillAccesses) + ")";
          if (T.Failures)
            Cell += " !" + std::to_string(T.Failures);
          std::printf("%22s", Cell.c_str());
        }
        std::printf("\n");
      }
    }
  }
  std::fflush(stdout);
}

void writePressureJson(const std::string &Path) {
  JsonWriter W;
  W.beginObject();
  W.key("bench").value("regpressure");
  W.key("records").beginArray();
  for (const PressureRecord &R : Records) {
    W.beginObject();
    W.key("suite").value(R.Suite);
    W.key("config").value(R.Config);
    W.key("num_regs").value(R.NumRegs);
    W.key("allocator").value(R.Allocator);
    W.key("spill_mode").value(R.SpillMode);
    W.key("spills").value(R.Totals.Spills);
    W.key("spill_accesses").value(R.Totals.SpillAccesses);
    W.key("failures").value(R.Totals.Failures);
    W.endObject();
  }
  W.endArray();
  W.endObject();
  std::FILE *Out = std::fopen(Path.c_str(), "w");
  if (!Out) {
    std::fprintf(stderr, "cannot write '%s'\n", Path.c_str());
    std::exit(1);
  }
  std::fprintf(Out, "%s\n", W.str().c_str());
  std::fclose(Out);
}

void registerBenchmarks() {
  for (const auto &[Name, Suite] : suites()) {
    (void)Suite;
    for (const char *Preset : {"Lphi,ABI+C", "C,naiveABI+C"})
      for (AllocatorKind A : {AllocatorKind::ChaitinBriggs,
                              AllocatorKind::Chordal})
        benchmark::RegisterBenchmark(
            ("RegAlloc/" + Name + "/" + Preset + "/" + allocatorName(A))
                .c_str(),
            [Name = Name, Preset, A](benchmark::State &S) {
              const std::vector<Workload> *Found = nullptr;
              for (const auto &[N, Members] : suites())
                if (N == Name)
                  Found = &Members;
              RegAllocOptions Opts;
              Opts.Allocator = A;
              Opts.NumRegs = 8;
              for (auto _ : S) {
                PressureTotals T = allocateSuite(*Found, Preset, Opts);
                benchmark::DoNotOptimize(T.Spills);
              }
            });
  }
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath = extractJsonPath(argc, argv);
  printPressureTables();
  if (!JsonPath.empty())
    writePressureJson(JsonPath);
  registerBenchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
