//===- bench_regpressure.cpp - The paper's [LIM4] made measurable ---------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
//
// The paper's [LIM4]: "in the case of strong register pressure, the
// problem becomes different: coalescing (or splitting) variables has a
// strong impact on the colorability of the interference graph during
// the register allocator phase" — listed as out of scope there. This
// bench runs our Chaitin-Briggs allocator after each out-of-SSA
// configuration at several register-file sizes and reports spills plus
// the static (5^depth-weighted) count of spill accesses, answering: does
// the pinning-based coalescing pay for its move savings with spills?
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "regalloc/RegAlloc.h"

#include <benchmark/benchmark.h>

using namespace lao;
using namespace lao::bench;

namespace {

struct PressureTotals {
  uint64_t Spills = 0;
  uint64_t SpillAccesses = 0; // loads + stores inserted
  unsigned Failures = 0;      // functions the allocator gave up on
};

PressureTotals allocateSuite(const std::vector<Workload> &Suite,
                             const char *Preset, unsigned NumRegs) {
  // Same deterministic shape as runOnSuite: allocate each function
  // independently (in parallel when the machine allows), reduce in suite
  // order.
  std::vector<RegAllocResult> Results(Suite.size());
  auto AllocOne = [&](size_t I) {
    auto F = cloneFunction(*Suite[I].F);
    runPipeline(*F, pipelinePreset(Preset));
    RegAllocOptions Opts;
    Opts.NumRegs = NumRegs;
    Results[I] = allocateRegisters(*F, Opts);
  };
  if (sharedPool().numThreads() > 1)
    sharedPool().parallelFor(Suite.size(), AllocOne);
  else
    for (size_t I = 0; I < Suite.size(); ++I)
      AllocOne(I);

  PressureTotals T;
  for (const RegAllocResult &R : Results) {
    if (!R.Ok) {
      ++T.Failures;
      continue;
    }
    T.Spills += R.NumSpilled;
    T.SpillAccesses += R.NumSpillLoads + R.NumSpillStores;
  }
  return T;
}

/// JSON records for --json: one per (num_regs, suite, config) cell of the
/// printed tables, same numbers (recorded while printing).
struct PressureRecord {
  std::string Suite;
  std::string Config;
  unsigned NumRegs;
  PressureTotals Totals;
};
std::vector<PressureRecord> Records;

void printPressureTables() {
  for (unsigned NumRegs : {6u, 8u, 12u}) {
    std::printf("\nRegister pressure: spills (spill loads+stores) with %u "
                "registers\n",
                NumRegs);
    std::printf("%-14s %22s %22s %22s\n", "benchmark", "Lphi,ABI+C",
                "LABI+C", "C,naiveABI+C");
    for (const auto &[Name, Suite] : suites()) {
      std::printf("%-14s", Name.c_str());
      for (const char *Preset : {"Lphi,ABI+C", "LABI+C", "C,naiveABI+C"}) {
        PressureTotals T = allocateSuite(Suite, Preset, NumRegs);
        Records.push_back({Name, Preset, NumRegs, T});
        std::string Cell =
            std::to_string(T.Spills) + " (" +
            std::to_string(T.SpillAccesses) + ")";
        if (T.Failures)
          Cell += " !" + std::to_string(T.Failures);
        std::printf("%22s", Cell.c_str());
      }
      std::printf("\n");
    }
  }
  std::fflush(stdout);
}

void writePressureJson(const std::string &Path) {
  JsonWriter W;
  W.beginObject();
  W.key("bench").value("regpressure");
  W.key("records").beginArray();
  for (const PressureRecord &R : Records) {
    W.beginObject();
    W.key("suite").value(R.Suite);
    W.key("config").value(R.Config);
    W.key("num_regs").value(R.NumRegs);
    W.key("spills").value(R.Totals.Spills);
    W.key("spill_accesses").value(R.Totals.SpillAccesses);
    W.key("failures").value(R.Totals.Failures);
    W.endObject();
  }
  W.endArray();
  W.endObject();
  std::FILE *Out = std::fopen(Path.c_str(), "w");
  if (!Out) {
    std::fprintf(stderr, "cannot write '%s'\n", Path.c_str());
    std::exit(1);
  }
  std::fprintf(Out, "%s\n", W.str().c_str());
  std::fclose(Out);
}

void registerBenchmarks() {
  for (const auto &[Name, Suite] : suites()) {
    (void)Suite;
    for (const char *Preset : {"Lphi,ABI+C", "C,naiveABI+C"})
      benchmark::RegisterBenchmark(
          ("RegAlloc/" + Name + "/" + Preset).c_str(),
          [Name = Name, Preset](benchmark::State &S) {
            const std::vector<Workload> *Found = nullptr;
            for (const auto &[N, Members] : suites())
              if (N == Name)
                Found = &Members;
            for (auto _ : S) {
              PressureTotals T = allocateSuite(*Found, Preset, 8);
              benchmark::DoNotOptimize(T.Spills);
            }
          });
  }
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath = extractJsonPath(argc, argv);
  printPressureTables();
  if (!JsonPath.empty())
    writePressureJson(JsonPath);
  registerBenchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
