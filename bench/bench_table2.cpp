//===- bench_table2.cpp - Paper Table 2 reproduction -------------------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
//
// Table 2: "Comparison of move instruction count with no ABI constraint."
// Columns: Lphi+C (ours, absolute), C (delta), Sphi+C (delta). The SP
// constraint is always applied, as in the paper. Expected shape: Lphi+C
// <= C everywhere; Sphi+C close (the paper reports it slightly worse on
// most suites and slightly better on SPECint).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

using namespace lao;
using namespace lao::bench;

namespace {

BenchReport Report;

uint64_t movesOf(const std::string &Name, const std::vector<Workload> &Suite,
                 const char *Preset) {
  return Report.totals(Name, Suite, pipelinePreset(Preset)).Moves;
}

void BM_Table2Config(benchmark::State &State, const std::string &SuiteName,
                     const char *Preset) {
  const std::vector<Workload> *Suite = nullptr;
  for (const auto &[Name, S] : suites())
    if (Name == SuiteName)
      Suite = &S;
  for (auto _ : State) {
    SuiteTotals T = runOnSuite(*Suite, pipelinePreset(Preset));
    benchmark::DoNotOptimize(T.Moves);
  }
}

void registerBenchmarks() {
  for (const auto &[Name, Suite] : suites())
    for (const char *Preset : {"Lphi+C", "C", "Sphi+C"}) {
      (void)Suite;
      benchmark::RegisterBenchmark(
          ("Table2/" + Name + "/" + Preset).c_str(),
          [Name = Name, Preset](benchmark::State &S) {
            BM_Table2Config(S, Name, Preset);
          });
    }
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath = extractJsonPath(argc, argv);
  printDeltaTable(
      "Table 2: move instruction count with no ABI constraint",
      {{"Lphi+C",
        [](const auto &N, const auto &S) { return movesOf(N, S, "Lphi+C"); }},
       {"C", [](const auto &N, const auto &S) { return movesOf(N, S, "C"); }},
       {"Sphi+C",
        [](const auto &N, const auto &S) { return movesOf(N, S, "Sphi+C"); }}},
      "(Sphi+C is an optimistic approximation, as in the paper: the\n"
      " Sreedhar conversion is not dedicated-register safe.)");
  if (!JsonPath.empty())
    Report.writeJson(JsonPath, "table2");

  registerBenchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
