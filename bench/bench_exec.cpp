//===- bench_exec.cpp - Dynamic move cost on the bytecode VM --------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
//
// The paper argues about move cost statically (Tables 2/3 count move
// instructions in the emitted code). This bench opens the *dynamic*
// axis: every named-suite function is compiled under the pinning
// pipeline with coalescing on and off (Lphi,ABI+C vs Lphi,ABI), then
// every recorded input is executed on the bytecode VM, counting the
// instructions and moves that actually run. The tree-walk interpreter
// executes the same programs as a live cross-check — any sameOutcome
// violation aborts the bench — and provides the denominator for the
// non-gating VM-vs-interpreter throughput comparison, including a
// scale_n sweep over generated workloads with deterministic arguments.
//
// Record key shape (BENCH_exec.json): (suite, config). The fields
// functions/runs/errors/dyn_instrs/dyn_moves/outputs are deterministic
// — scripts/check_bench_regression.py gates them bit-identically.
// "outputs" is an FNV-1a digest of every run's status, output trace and
// return value (a full trace dump would dwarf the file). vm_seconds/
// interp_seconds/speedup are wall-clock and never gate;
// scripts/report_exec_throughput.py renders them for the CI summary.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "exec/Bytecode.h"
#include "exec/VM.h"
#include "workloads/Generator.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <memory>

using namespace lao;
using namespace lao::bench;

namespace {

/// The coalescing-on / coalescing-off pair whose executed-move delta is
/// the result this bench exists for. Both run the pinning pipeline, so
/// the only difference is the coalescer.
const char *const ExecConfigs[] = {"Lphi,ABI+C", "Lphi,ABI"};

/// Step budget for every run, both engines. Larger than the engines'
/// default so no suite function times out; budgets are engine-specific
/// cost models, so both engines always get the same number.
constexpr uint64_t ExecMaxSteps = 1u << 24;

/// Executions per (function, input) per timing pass, and alternating
/// vm/interp passes per suite (the minimum wins). Counters are taken
/// from a single run — they are identical every repetition.
constexpr unsigned TimingReps = 25;
constexpr unsigned TimingPasses = 3;

struct ExecTotals {
  uint64_t Functions = 0;
  uint64_t Runs = 0;
  uint64_t Errors = 0; ///< Runs that did not reach `ret` (error/timeout).
  uint64_t DynInstrs = 0;
  uint64_t DynMoves = 0;
  uint64_t Digest = 14695981039346656037ull; ///< FNV-1a over all traces.
  double VmSeconds = 0;
  double InterpSeconds = 0;
};

void feedDigest(uint64_t &H, uint64_t V) {
  for (int B = 0; B < 8; ++B) {
    H ^= (V >> (B * 8)) & 0xFF;
    H *= 1099511628211ull;
  }
}

void feedDigest(uint64_t &H, const ExecResult &R) {
  feedDigest(H, static_cast<uint64_t>(R.Status));
  feedDigest(H, R.Outputs.size());
  for (uint64_t V : R.Outputs)
    feedDigest(H, V);
  feedDigest(H, R.ok() ? R.RetValue : 0);
}

/// One compiled workload: the transformed function (the interpreter
/// runs it directly) plus its bytecode and argument sets.
struct CompiledWorkload {
  std::string Name;
  std::unique_ptr<Function> F;
  BytecodeFunction BC;
  std::vector<std::vector<uint64_t>> Inputs;
};

/// Compiles \p Suite under \p Preset. Workloads without recorded inputs
/// get \p GeneratedSets deterministic argument vectors sized to the
/// function's arity (the scale sweep ships none).
std::vector<CompiledWorkload> compileSuite(const std::vector<Workload> &Suite,
                                           const char *Preset,
                                           unsigned GeneratedSets = 0) {
  std::vector<CompiledWorkload> Out;
  for (size_t I = 0; I < Suite.size(); ++I) {
    const Workload &W = Suite[I];
    CompiledWorkload C;
    C.Name = W.Name;
    C.F = cloneFunction(*W.F);
    if (std::strcmp(Preset, "ssa") != 0)
      runPipeline(*C.F, pipelinePreset(Preset));
    C.BC = compileToBytecode(*C.F);
    C.Inputs = W.Inputs;
    if (C.Inputs.empty())
      for (unsigned K = 0; K < GeneratedSets; ++K) {
        std::vector<uint64_t> Args(C.BC.NumParams);
        for (size_t A = 0; A < Args.size(); ++A)
          Args[A] = (I * 131 + K * 17 + A * 7 + 13) % 997;
        C.Inputs.push_back(std::move(Args));
      }
    Out.push_back(std::move(C));
  }
  return Out;
}

/// Runs every (function, input) once for the deterministic counters —
/// aborting loudly if the two engines ever disagree — then times
/// TimingReps repetitions of each engine.
ExecTotals measureSuite(const std::vector<CompiledWorkload> &Compiled,
                        const char *Preset) {
  using Clock = std::chrono::steady_clock;
  ExecTotals T;
  T.Functions = Compiled.size();
  for (const CompiledWorkload &C : Compiled)
    for (const auto &Args : C.Inputs) {
      ExecResult Vm = runBytecode(C.BC, Args, ExecMaxSteps);
      ExecResult In = interpret(*C.F, Args, ExecMaxSteps);
      if (!Vm.sameOutcome(In)) {
        std::fprintf(stderr,
                     "EXEC DIVERGENCE: %s under %s (vm: %s, interp: %s)\n",
                     C.Name.c_str(), Preset,
                     Vm.ok() ? "ok" : Vm.Error.c_str(),
                     In.ok() ? "ok" : In.Error.c_str());
        std::abort();
      }
      ++T.Runs;
      T.Errors += !Vm.ok();
      T.DynInstrs += Vm.Steps;
      T.DynMoves += Vm.DynMoves;
      feedDigest(T.Digest, Vm);
    }

  // Alternating min-of-N passes: the two engines see the same machine
  // noise, and the minimum is the least-disturbed measurement of each.
  T.VmSeconds = T.InterpSeconds = 1e100;
  for (unsigned Pass = 0; Pass < TimingPasses; ++Pass) {
    Clock::time_point VmStart = Clock::now();
    for (unsigned R = 0; R < TimingReps; ++R)
      for (const CompiledWorkload &C : Compiled)
        for (const auto &Args : C.Inputs)
          benchmark::DoNotOptimize(runBytecode(C.BC, Args, ExecMaxSteps).Steps);
    Clock::time_point VmEnd = Clock::now();
    for (unsigned R = 0; R < TimingReps; ++R)
      for (const CompiledWorkload &C : Compiled)
        for (const auto &Args : C.Inputs)
          benchmark::DoNotOptimize(interpret(*C.F, Args, ExecMaxSteps).Steps);
    Clock::time_point InEnd = Clock::now();
    T.VmSeconds = std::min(
        T.VmSeconds, std::chrono::duration<double>(VmEnd - VmStart).count());
    T.InterpSeconds = std::min(
        T.InterpSeconds, std::chrono::duration<double>(InEnd - VmEnd).count());
  }
  return T;
}

/// The scale sweep reuses bench_compiletime's generator recipe (same
/// seeds, same shapes) so the execution numbers line up with the
/// compile-time ones; inputs are generated since the sweep ships none.
/// It executes the optimized-SSA form directly (config "ssa") — the
/// form the property suites exercise hardest, where the interpreter
/// pays for dynamic phi resolution that the bytecode compiler folded
/// into edge stubs.
struct ScaleSpec {
  const char *Name;
  unsigned NumStatements;
  unsigned MaxNesting;
  unsigned Count;
};

constexpr ScaleSpec ScaleSweep[] = {
    {"scale_n40", 40, 2, 12},
    {"scale_n120", 120, 3, 8},
    {"scale_n320", 320, 3, 4},
    {"scale_n640", 640, 4, 2},
    {"scale_n1280", 1280, 4, 1},
};

std::vector<Workload> makeScaleSuite(const ScaleSpec &Spec) {
  std::vector<Workload> Suite;
  for (unsigned I = 0; I < Spec.Count; ++I) {
    GeneratorParams P;
    P.Seed = 0x5CA1E000 + 7919 * I + Spec.NumStatements;
    P.NumStatements = Spec.NumStatements;
    P.MaxNesting = Spec.MaxNesting;
    P.CallPercent = 20;
    Workload W;
    W.Name = std::string(Spec.Name) + "_f" + std::to_string(I);
    W.F = generateProgram(P, W.Name);
    normalizeToOptimizedSSA(*W.F);
    Suite.push_back(std::move(W));
  }
  return Suite;
}

struct ExecRecord {
  std::string Suite;
  std::string Config;
  ExecTotals Totals;
};
std::vector<ExecRecord> Records;

void printDynamicMoveTable() {
  std::printf("\nDynamic move cost (executed on the bytecode VM)\n");
  std::printf("%-14s %24s %24s %10s\n", "benchmark",
              "Lphi,ABI+C (instrs/mov)", "Lphi,ABI (instrs/mov)",
              "mov saved");
  for (const auto &[Name, Suite] : suites()) {
    ExecTotals Per[2];
    for (int K = 0; K < 2; ++K) {
      Per[K] = measureSuite(compileSuite(Suite, ExecConfigs[K]),
                            ExecConfigs[K]);
      Records.push_back({Name, ExecConfigs[K], Per[K]});
    }
    std::printf("%-14s %13llu /%9llu %13llu /%9llu %+10lld\n", Name.c_str(),
                static_cast<unsigned long long>(Per[0].DynInstrs),
                static_cast<unsigned long long>(Per[0].DynMoves),
                static_cast<unsigned long long>(Per[1].DynInstrs),
                static_cast<unsigned long long>(Per[1].DynMoves),
                static_cast<long long>(Per[1].DynMoves) -
                    static_cast<long long>(Per[0].DynMoves));
  }
  std::fflush(stdout);
}

void printThroughputTable() {
  std::printf("\nExecution throughput sweep (optimized SSA, %u passes x %u reps)\n",
              TimingPasses, TimingReps);
  std::printf("%-12s %6s %12s %12s %8s\n", "point", "runs", "vm-s",
              "interp-s", "speedup");
  for (const ScaleSpec &Spec : ScaleSweep) {
    std::vector<Workload> Suite = makeScaleSuite(Spec);
    ExecTotals T = measureSuite(
        compileSuite(Suite, "ssa", /*GeneratedSets=*/3), "ssa");
    Records.push_back({Spec.Name, "Lphi,ABI+C", T});
    std::printf("%-12s %6llu %12.6f %12.6f %7.2fx\n", Spec.Name,
                static_cast<unsigned long long>(T.Runs), T.VmSeconds,
                T.InterpSeconds,
                T.VmSeconds > 0 ? T.InterpSeconds / T.VmSeconds : 0.0);
  }
  std::fflush(stdout);
}

void writeExecJson(const std::string &Path) {
  JsonWriter W;
  W.beginObject();
  W.key("bench").value("exec");
  W.key("records").beginArray();
  for (const ExecRecord &R : Records) {
    W.beginObject();
    W.key("suite").value(R.Suite);
    W.key("config").value(R.Config);
    W.key("functions").value(R.Totals.Functions);
    W.key("runs").value(R.Totals.Runs);
    W.key("errors").value(R.Totals.Errors);
    W.key("dyn_instrs").value(R.Totals.DynInstrs);
    W.key("dyn_moves").value(R.Totals.DynMoves);
    W.key("outputs").value(R.Totals.Digest);
    W.key("vm_seconds").value(R.Totals.VmSeconds);
    W.key("interp_seconds").value(R.Totals.InterpSeconds);
    W.key("speedup").value(R.Totals.VmSeconds > 0
                               ? R.Totals.InterpSeconds / R.Totals.VmSeconds
                               : 0.0);
    W.endObject();
  }
  W.endArray();
  W.endObject();
  std::FILE *Out = std::fopen(Path.c_str(), "w");
  if (!Out) {
    std::fprintf(stderr, "cannot write '%s'\n", Path.c_str());
    std::exit(1);
  }
  std::fprintf(Out, "%s\n", W.str().c_str());
  std::fclose(Out);
}

void registerBenchmarks() {
  for (const auto &[Name, Suite] : suites()) {
    (void)Suite;
    for (const char *Engine : {"vm", "interp"})
      benchmark::RegisterBenchmark(
          ("Exec/" + Name + "/" + Engine).c_str(),
          [Name = Name, Engine](benchmark::State &S) {
            const std::vector<Workload> *Found = nullptr;
            for (const auto &[N, Members] : suites())
              if (N == Name)
                Found = &Members;
            std::vector<CompiledWorkload> Compiled =
                compileSuite(*Found, "Lphi,ABI+C");
            bool Vm = std::strcmp(Engine, "vm") == 0;
            for (auto _ : S)
              for (const CompiledWorkload &C : Compiled)
                for (const auto &Args : C.Inputs)
                  benchmark::DoNotOptimize(
                      Vm ? runBytecode(C.BC, Args, ExecMaxSteps).Steps
                         : interpret(*C.F, Args, ExecMaxSteps).Steps);
          });
  }
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath = extractJsonPath(argc, argv);
  printDynamicMoveTable();
  printThroughputTable();
  if (!JsonPath.empty())
    writeExecJson(JsonPath);
  registerBenchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
