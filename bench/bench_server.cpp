//===- bench_server.cpp - Compile-service transport throughput ----------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
//
// Measures the compile service end to end: a feeder thread streams
// framed requests through a loopback socketpair into Server::serve
// (wrapped in the same FdStreamBuf the daemon uses), a collector
// drains the responses, and the run is accounted both ways:
//
//  * deterministic service measurements — frames, batches, functions,
//    request bytes, served IR bytes, error count — which the bench
//    itself asserts are identical across repetitions and
//    check_bench_regression.py gates bit-identical against the
//    committed BENCH_server.json baseline;
//  * wall-clock throughput (median seconds, functions/second) — never
//    gated, surfaced by --report-seconds in the CI step summary.
//
// Two workloads bracket the service overhead: `suite146` (every suite
// function once, compile-bound — framing is a small tax) and
// `tiny_x20` (the example1-8 functions twenty times over — tiny
// compiles, so per-frame overhead dominates and batching pays). Both
// run with one REQ per function (`frames_x1`) and packed into BAT
// frames of 32 (`batch_x32`).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "ir/IRPrinter.h"
#include "server/FdStream.h"
#include "server/Protocol.h"
#include "server/Server.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>
#include <thread>

#include <sys/socket.h>
#include <unistd.h>

using namespace lao;
using namespace lao::bench;

namespace {

constexpr unsigned NumWorkers = 4;
constexpr unsigned Reps = 3;

struct ServiceRun {
  // Gated (deterministic) service measurements.
  uint64_t Frames = 0;
  uint64_t Batches = 0;
  uint64_t Functions = 0;
  uint64_t BytesIn = 0;  ///< Request stream size.
  uint64_t IrBytes = 0;  ///< Served IR payload (response framing and
                         ///< JSON records carry timings, so the full
                         ///< response byte count is not deterministic).
  uint64_t Errors = 0;
  // Non-gated.
  double Seconds = 0;
  StatsSnapshot Counters;

  bool sameMeasurements(const ServiceRun &O) const {
    return Frames == O.Frames && Batches == O.Batches &&
           Functions == O.Functions && BytesIn == O.BytesIn &&
           IrBytes == O.IrBytes && Errors == O.Errors;
  }
};

bool writeBytes(int Fd, const std::string &Data) {
  size_t Off = 0;
  while (Off < Data.size()) {
    ssize_t N = write(Fd, Data.data() + Off, Data.size() - Off);
    if (N <= 0)
      return false;
    Off += static_cast<size_t>(N);
  }
  return true;
}

/// Encodes \p Texts as request frames: one REQ each, or BAT frames of
/// \p BatchSize.
std::string encodeStream(const std::vector<std::string> &Texts,
                         unsigned BatchSize, uint64_t &Frames,
                         uint64_t &Batches) {
  std::string Bytes;
  if (BatchSize <= 1) {
    for (size_t K = 0; K < Texts.size(); ++K) {
      Request R;
      R.Id = K + 1;
      R.Text = Texts[K];
      Bytes += encodeRequest(R);
      ++Frames;
    }
    return Bytes;
  }
  for (size_t K = 0; K < Texts.size();) {
    BatchRequest B;
    B.Id = Frames + 1;
    for (unsigned N = 0; N < BatchSize && K < Texts.size(); ++N, ++K)
      B.Texts.push_back(Texts[K]);
    Bytes += encodeBatchRequest(B);
    ++Frames;
    ++Batches;
  }
  return Bytes;
}

/// One timed pass: requests through a socketpair into a fresh server,
/// responses drained and accounted.
ServiceRun runOnce(const std::vector<std::string> &Texts,
                   unsigned BatchSize) {
  ServiceRun Run;
  std::string ReqBytes =
      encodeStream(Texts, BatchSize, Run.Frames, Run.Batches);
  Run.BytesIn = ReqBytes.size();

  ServerOptions Opts;
  Opts.NumWorkers = NumWorkers;
  Server S(Opts);
  int SV[2];
  if (socketpair(AF_UNIX, SOCK_STREAM, 0, SV) != 0) {
    std::fprintf(stderr, "socketpair failed\n");
    std::exit(1);
  }

  StatsSnapshot Before = StatsRegistry::instance().snapshot();
  auto T0 = std::chrono::steady_clock::now();
  std::thread Serving([&] {
    FdStreamBuf InBuf(SV[0]);
    FdStreamBuf OutBuf(SV[0]);
    std::istream In(&InBuf);
    std::ostream Out(&OutBuf);
    S.serve(In, Out);
    Out.flush();
    shutdown(SV[0], SHUT_WR);
  });
  std::string RspBytes;
  std::thread Collector([&] {
    char Buf[1u << 16];
    for (ssize_t N; (N = read(SV[1], Buf, sizeof(Buf))) > 0;)
      RspBytes.append(Buf, static_cast<size_t>(N));
  });
  if (!writeBytes(SV[1], ReqBytes)) {
    std::fprintf(stderr, "request feed failed\n");
    std::exit(1);
  }
  shutdown(SV[1], SHUT_WR);
  Collector.join();
  Serving.join();
  Run.Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
          .count();
  Run.Counters =
      StatsRegistry::delta(Before, StatsRegistry::instance().snapshot());
  close(SV[0]);
  close(SV[1]);

  std::istringstream In(RspBytes);
  FrameLimits Limits;
  Limits.MaxBodyBytes = 256u << 20;
  for (;;) {
    FrameKind Kind = FrameKind::Single;
    Response Rsp;
    BatchResponse Batch;
    std::string Error;
    FrameStatus St = readResponseFrame(In, Limits, Kind, Rsp, Batch, Error);
    if (St == FrameStatus::Eof)
      break;
    if (St != FrameStatus::Ok) {
      std::fprintf(stderr, "response stream: %s\n", Error.c_str());
      std::exit(1);
    }
    const std::vector<Response> OneItem = {Rsp};
    const std::vector<Response> &Items =
        Kind == FrameKind::Single ? OneItem : Batch.Items;
    for (const Response &Item : Items) {
      ++Run.Functions;
      Run.IrBytes += Item.IR.size();
      if (!Item.Ok)
        ++Run.Errors;
    }
  }
  return Run;
}

/// Repeats runOnce, asserts the service measurements never move, and
/// keeps the median wall-clock (first rep's counters — every rep's
/// compile work is identical by the same determinism argument).
ServiceRun runConfig(const char *Suite, const char *Config,
                     const std::vector<std::string> &Texts,
                     unsigned BatchSize) {
  std::vector<ServiceRun> Runs;
  for (unsigned K = 0; K < Reps; ++K) {
    Runs.push_back(runOnce(Texts, BatchSize));
    if (!Runs.back().sameMeasurements(Runs.front())) {
      std::fprintf(stderr,
                   "NONDETERMINISM: %s/%s rep %u measurements moved\n",
                   Suite, Config, K);
      std::exit(1);
    }
  }
  std::vector<double> Secs;
  for (const ServiceRun &R : Runs)
    Secs.push_back(R.Seconds);
  std::sort(Secs.begin(), Secs.end());
  ServiceRun Out = Runs.front();
  Out.Seconds = Secs[Secs.size() / 2];
  return Out;
}

struct Record {
  std::string Suite;
  std::string Config;
  ServiceRun Run;
};

std::string jsonString(const std::vector<Record> &Records) {
  JsonWriter W;
  W.beginObject();
  W.key("bench").value("server");
  W.key("records").beginArray();
  for (const Record &R : Records) {
    W.beginObject();
    W.key("suite").value(R.Suite);
    W.key("config").value(R.Config);
    W.key("frames").value(R.Run.Frames);
    W.key("batches").value(R.Run.Batches);
    W.key("functions").value(R.Run.Functions);
    W.key("bytes_in").value(R.Run.BytesIn);
    W.key("ir_bytes").value(R.Run.IrBytes);
    W.key("errors").value(R.Run.Errors);
    W.key("seconds").value(R.Run.Seconds);
    W.key("functions_per_sec")
        .value(R.Run.Seconds > 0 ? R.Run.Functions / R.Run.Seconds : 0.0);
    W.key("counters").beginObject();
    for (const auto &[Name, V] : R.Run.Counters)
      W.key(Name).value(V);
    W.endObject();
    W.endObject();
  }
  W.endArray();
  W.endObject();
  return W.str();
}

/// `suite146`: every function of every named suite, once.
std::vector<std::string> allTexts() {
  std::vector<std::string> Texts;
  for (const auto &[Name, Suite] : suites())
    for (const Workload &W : Suite)
      Texts.push_back(printFunction(*W.F));
  return Texts;
}

/// `tiny_x20`: the example1-8 functions, twenty passes. Compiles are
/// ~0.1 ms each, so this workload isolates the per-frame service
/// overhead that batching amortizes.
std::vector<std::string> tinyTexts() {
  std::vector<std::string> Base;
  for (const auto &[Name, Suite] : suites())
    if (Name == "example1-8")
      for (const Workload &W : Suite)
        Base.push_back(printFunction(*W.F));
  std::vector<std::string> Texts;
  for (unsigned K = 0; K < 20; ++K)
    Texts.insert(Texts.end(), Base.begin(), Base.end());
  return Texts;
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath = extractJsonPath(argc, argv);

  struct WorkloadSpec {
    const char *Suite;
    std::vector<std::string> Texts;
  };
  std::vector<WorkloadSpec> Workloads;
  Workloads.push_back({"suite146", allTexts()});
  Workloads.push_back({"tiny_x20", tinyTexts()});

  std::vector<Record> Records;
  std::printf("\nCompile-service throughput (%u workers, %u reps, median)\n",
              NumWorkers, Reps);
  std::printf("%-10s %-10s %9s %8s %10s %12s %14s\n", "suite", "config",
              "functions", "frames", "seconds", "funcs/sec", "ir-bytes");
  for (const WorkloadSpec &WS : Workloads) {
    double SingleFps = 0;
    for (auto [Config, BatchSize] :
         {std::pair<const char *, unsigned>{"frames_x1", 1},
          std::pair<const char *, unsigned>{"batch_x32", 32}}) {
      ServiceRun Run = runConfig(WS.Suite, Config, WS.Texts, BatchSize);
      if (Run.Errors != 0 || Run.Functions != WS.Texts.size()) {
        std::fprintf(stderr, "%s/%s: %llu errors, %llu/%zu answered\n",
                     WS.Suite, Config,
                     static_cast<unsigned long long>(Run.Errors),
                     static_cast<unsigned long long>(Run.Functions),
                     WS.Texts.size());
        return 1;
      }
      double Fps = Run.Seconds > 0 ? Run.Functions / Run.Seconds : 0;
      if (BatchSize <= 1)
        SingleFps = Fps;
      std::printf("%-10s %-10s %9llu %8llu %10.4f %12.0f %14llu\n",
                  WS.Suite, Config,
                  static_cast<unsigned long long>(Run.Functions),
                  static_cast<unsigned long long>(Run.Frames), Run.Seconds,
                  Fps, static_cast<unsigned long long>(Run.IrBytes));
      Records.push_back({WS.Suite, Config, std::move(Run)});
    }
    if (SingleFps > 0) {
      double Ratio = (Records.back().Run.Functions /
                      Records.back().Run.Seconds) /
                     SingleFps;
      std::printf("%-10s batch_x32 over frames_x1: %.2fx\n", WS.Suite,
                  Ratio);
    }
  }
  std::fflush(stdout);

  if (!JsonPath.empty()) {
    std::FILE *Out = std::fopen(JsonPath.c_str(), "w");
    if (!Out) {
      std::fprintf(stderr, "cannot write '%s'\n", JsonPath.c_str());
      return 1;
    }
    std::fprintf(Out, "%s\n", jsonString(Records).c_str());
    std::fclose(Out);
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
