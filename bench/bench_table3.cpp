//===- bench_table3.cpp - Paper Table 3 reproduction -------------------------===//
//
// Part of the lao project (CGO 2004 out-of-SSA reproduction).
//
//===----------------------------------------------------------------------===//
//
// Table 3: "Comparison of move instruction count with renaming
// constraints." Columns: Lphi,ABI+C (ours, absolute), Sphi+LABI+C, LABI+C
// and C (deltas). "C" here is the paper's fully naive column: phis
// replaced without coalescing pins and the ABI lowered locally, then the
// aggressive coalescer. Expected shape: Lphi,ABI+C best everywhere, the
// naive column dramatically worse.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

using namespace lao;
using namespace lao::bench;

namespace {

BenchReport Report;

uint64_t movesOf(const std::string &Name, const std::vector<Workload> &Suite,
                 const char *Preset) {
  return Report.totals(Name, Suite, pipelinePreset(Preset)).Moves;
}

void registerBenchmarks() {
  for (const auto &[Name, Suite] : suites())
    for (const char *Preset :
         {"Lphi,ABI+C", "Sphi+LABI+C", "LABI+C", "C,naiveABI+C"}) {
      (void)Suite;
      benchmark::RegisterBenchmark(
          ("Table3/" + Name + "/" + Preset).c_str(),
          [Name = Name, Preset](benchmark::State &S) {
            const std::vector<Workload> *Found = nullptr;
            for (const auto &[N, Members] : suites())
              if (N == Name)
                Found = &Members;
            for (auto _ : S) {
              SuiteTotals T = runOnSuite(*Found, pipelinePreset(Preset));
              benchmark::DoNotOptimize(T.Moves);
            }
          });
    }
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath = extractJsonPath(argc, argv);
  printDeltaTable(
      "Table 3: move instruction count with renaming constraints",
      {{"Lphi,ABI+C",
        [](const auto &N, const auto &S) {
          return movesOf(N, S, "Lphi,ABI+C");
        }},
       {"Sphi+LABI+C",
        [](const auto &N, const auto &S) {
          return movesOf(N, S, "Sphi+LABI+C");
        }},
       {"LABI+C",
        [](const auto &N, const auto &S) { return movesOf(N, S, "LABI+C"); }},
       {"C", [](const auto &N, const auto &S) {
          return movesOf(N, S, "C,naiveABI+C");
        }}});
  if (!JsonPath.empty())
    Report.writeJson(JsonPath, "table3");

  registerBenchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
