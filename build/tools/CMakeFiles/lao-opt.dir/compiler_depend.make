# Empty compiler generated dependencies file for lao-opt.
# This may be replaced when dependencies are built.
