file(REMOVE_RECURSE
  "CMakeFiles/lao-opt.dir/lao-opt.cpp.o"
  "CMakeFiles/lao-opt.dir/lao-opt.cpp.o.d"
  "lao-opt"
  "lao-opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lao-opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
