file(REMOVE_RECURSE
  "CMakeFiles/pipeline_compare.dir/pipeline_compare.cpp.o"
  "CMakeFiles/pipeline_compare.dir/pipeline_compare.cpp.o.d"
  "pipeline_compare"
  "pipeline_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
