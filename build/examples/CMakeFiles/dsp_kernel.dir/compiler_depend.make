# Empty compiler generated dependencies file for dsp_kernel.
# This may be replaced when dependencies are built.
