file(REMOVE_RECURSE
  "CMakeFiles/dsp_kernel.dir/dsp_kernel.cpp.o"
  "CMakeFiles/dsp_kernel.dir/dsp_kernel.cpp.o.d"
  "dsp_kernel"
  "dsp_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsp_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
