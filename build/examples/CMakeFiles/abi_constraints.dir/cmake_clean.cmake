file(REMOVE_RECURSE
  "CMakeFiles/abi_constraints.dir/abi_constraints.cpp.o"
  "CMakeFiles/abi_constraints.dir/abi_constraints.cpp.o.d"
  "abi_constraints"
  "abi_constraints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abi_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
