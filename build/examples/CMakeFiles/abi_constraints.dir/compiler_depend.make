# Empty compiler generated dependencies file for abi_constraints.
# This may be replaced when dependencies are built.
