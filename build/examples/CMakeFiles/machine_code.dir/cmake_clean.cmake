file(REMOVE_RECURSE
  "CMakeFiles/machine_code.dir/machine_code.cpp.o"
  "CMakeFiles/machine_code.dir/machine_code.cpp.o.d"
  "machine_code"
  "machine_code.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/machine_code.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
