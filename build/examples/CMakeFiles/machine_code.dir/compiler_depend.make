# Empty compiler generated dependencies file for machine_code.
# This may be replaced when dependencies are built.
