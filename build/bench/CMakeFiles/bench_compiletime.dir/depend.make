# Empty dependencies file for bench_compiletime.
# This may be replaced when dependencies are built.
