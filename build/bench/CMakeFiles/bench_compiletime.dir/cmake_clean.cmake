file(REMOVE_RECURSE
  "CMakeFiles/bench_compiletime.dir/bench_compiletime.cpp.o"
  "CMakeFiles/bench_compiletime.dir/bench_compiletime.cpp.o.d"
  "bench_compiletime"
  "bench_compiletime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compiletime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
