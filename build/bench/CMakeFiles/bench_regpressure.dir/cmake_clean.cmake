file(REMOVE_RECURSE
  "CMakeFiles/bench_regpressure.dir/bench_regpressure.cpp.o"
  "CMakeFiles/bench_regpressure.dir/bench_regpressure.cpp.o.d"
  "bench_regpressure"
  "bench_regpressure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_regpressure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
