
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table2.cpp" "bench/CMakeFiles/bench_table2.dir/bench_table2.cpp.o" "gcc" "bench/CMakeFiles/bench_table2.dir/bench_table2.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/outofssa/CMakeFiles/lao_outofssa.dir/DependInfo.cmake"
  "/root/repo/build/src/regalloc/CMakeFiles/lao_regalloc.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/lao_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/lao_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/ssa/CMakeFiles/lao_ssa.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/lao_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/lao_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lao_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
