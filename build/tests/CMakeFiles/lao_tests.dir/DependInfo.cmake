
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/AnalysisTests.cpp" "tests/CMakeFiles/lao_tests.dir/AnalysisTests.cpp.o" "gcc" "tests/CMakeFiles/lao_tests.dir/AnalysisTests.cpp.o.d"
  "/root/repo/tests/CoalescerTests.cpp" "tests/CMakeFiles/lao_tests.dir/CoalescerTests.cpp.o" "gcc" "tests/CMakeFiles/lao_tests.dir/CoalescerTests.cpp.o.d"
  "/root/repo/tests/ConstraintsTests.cpp" "tests/CMakeFiles/lao_tests.dir/ConstraintsTests.cpp.o" "gcc" "tests/CMakeFiles/lao_tests.dir/ConstraintsTests.cpp.o.d"
  "/root/repo/tests/EquivalenceTests.cpp" "tests/CMakeFiles/lao_tests.dir/EquivalenceTests.cpp.o" "gcc" "tests/CMakeFiles/lao_tests.dir/EquivalenceTests.cpp.o.d"
  "/root/repo/tests/IRTests.cpp" "tests/CMakeFiles/lao_tests.dir/IRTests.cpp.o" "gcc" "tests/CMakeFiles/lao_tests.dir/IRTests.cpp.o.d"
  "/root/repo/tests/IfConversionTests.cpp" "tests/CMakeFiles/lao_tests.dir/IfConversionTests.cpp.o" "gcc" "tests/CMakeFiles/lao_tests.dir/IfConversionTests.cpp.o.d"
  "/root/repo/tests/InterpreterTests.cpp" "tests/CMakeFiles/lao_tests.dir/InterpreterTests.cpp.o" "gcc" "tests/CMakeFiles/lao_tests.dir/InterpreterTests.cpp.o.d"
  "/root/repo/tests/LeungGeorgeTests.cpp" "tests/CMakeFiles/lao_tests.dir/LeungGeorgeTests.cpp.o" "gcc" "tests/CMakeFiles/lao_tests.dir/LeungGeorgeTests.cpp.o.d"
  "/root/repo/tests/OptimalCoalescingTests.cpp" "tests/CMakeFiles/lao_tests.dir/OptimalCoalescingTests.cpp.o" "gcc" "tests/CMakeFiles/lao_tests.dir/OptimalCoalescingTests.cpp.o.d"
  "/root/repo/tests/ParallelCopyTests.cpp" "tests/CMakeFiles/lao_tests.dir/ParallelCopyTests.cpp.o" "gcc" "tests/CMakeFiles/lao_tests.dir/ParallelCopyTests.cpp.o.d"
  "/root/repo/tests/PhiCoalescingTests.cpp" "tests/CMakeFiles/lao_tests.dir/PhiCoalescingTests.cpp.o" "gcc" "tests/CMakeFiles/lao_tests.dir/PhiCoalescingTests.cpp.o.d"
  "/root/repo/tests/PinningTests.cpp" "tests/CMakeFiles/lao_tests.dir/PinningTests.cpp.o" "gcc" "tests/CMakeFiles/lao_tests.dir/PinningTests.cpp.o.d"
  "/root/repo/tests/PipelineTests.cpp" "tests/CMakeFiles/lao_tests.dir/PipelineTests.cpp.o" "gcc" "tests/CMakeFiles/lao_tests.dir/PipelineTests.cpp.o.d"
  "/root/repo/tests/PropertyTests.cpp" "tests/CMakeFiles/lao_tests.dir/PropertyTests.cpp.o" "gcc" "tests/CMakeFiles/lao_tests.dir/PropertyTests.cpp.o.d"
  "/root/repo/tests/RegAllocTests.cpp" "tests/CMakeFiles/lao_tests.dir/RegAllocTests.cpp.o" "gcc" "tests/CMakeFiles/lao_tests.dir/RegAllocTests.cpp.o.d"
  "/root/repo/tests/SSATests.cpp" "tests/CMakeFiles/lao_tests.dir/SSATests.cpp.o" "gcc" "tests/CMakeFiles/lao_tests.dir/SSATests.cpp.o.d"
  "/root/repo/tests/SreedharTests.cpp" "tests/CMakeFiles/lao_tests.dir/SreedharTests.cpp.o" "gcc" "tests/CMakeFiles/lao_tests.dir/SreedharTests.cpp.o.d"
  "/root/repo/tests/StressTests.cpp" "tests/CMakeFiles/lao_tests.dir/StressTests.cpp.o" "gcc" "tests/CMakeFiles/lao_tests.dir/StressTests.cpp.o.d"
  "/root/repo/tests/SupportTests.cpp" "tests/CMakeFiles/lao_tests.dir/SupportTests.cpp.o" "gcc" "tests/CMakeFiles/lao_tests.dir/SupportTests.cpp.o.d"
  "/root/repo/tests/WorkloadTests.cpp" "tests/CMakeFiles/lao_tests.dir/WorkloadTests.cpp.o" "gcc" "tests/CMakeFiles/lao_tests.dir/WorkloadTests.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/outofssa/CMakeFiles/lao_outofssa.dir/DependInfo.cmake"
  "/root/repo/build/src/regalloc/CMakeFiles/lao_regalloc.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/lao_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/lao_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/ssa/CMakeFiles/lao_ssa.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/lao_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/lao_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lao_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
