# Empty dependencies file for lao_tests.
# This may be replaced when dependencies are built.
