file(REMOVE_RECURSE
  "CMakeFiles/lao_analysis.dir/Dominators.cpp.o"
  "CMakeFiles/lao_analysis.dir/Dominators.cpp.o.d"
  "CMakeFiles/lao_analysis.dir/InterferenceGraph.cpp.o"
  "CMakeFiles/lao_analysis.dir/InterferenceGraph.cpp.o.d"
  "CMakeFiles/lao_analysis.dir/Liveness.cpp.o"
  "CMakeFiles/lao_analysis.dir/Liveness.cpp.o.d"
  "CMakeFiles/lao_analysis.dir/LoopInfo.cpp.o"
  "CMakeFiles/lao_analysis.dir/LoopInfo.cpp.o.d"
  "liblao_analysis.a"
  "liblao_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lao_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
