file(REMOVE_RECURSE
  "liblao_analysis.a"
)
