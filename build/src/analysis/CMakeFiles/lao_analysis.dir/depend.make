# Empty dependencies file for lao_analysis.
# This may be replaced when dependencies are built.
