# Empty compiler generated dependencies file for lao_exec.
# This may be replaced when dependencies are built.
