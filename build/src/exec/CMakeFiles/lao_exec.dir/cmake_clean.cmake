file(REMOVE_RECURSE
  "CMakeFiles/lao_exec.dir/Interpreter.cpp.o"
  "CMakeFiles/lao_exec.dir/Interpreter.cpp.o.d"
  "liblao_exec.a"
  "liblao_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lao_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
