file(REMOVE_RECURSE
  "liblao_exec.a"
)
