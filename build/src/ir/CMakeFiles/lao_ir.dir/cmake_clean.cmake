file(REMOVE_RECURSE
  "CMakeFiles/lao_ir.dir/CFG.cpp.o"
  "CMakeFiles/lao_ir.dir/CFG.cpp.o.d"
  "CMakeFiles/lao_ir.dir/Clone.cpp.o"
  "CMakeFiles/lao_ir.dir/Clone.cpp.o.d"
  "CMakeFiles/lao_ir.dir/DotExport.cpp.o"
  "CMakeFiles/lao_ir.dir/DotExport.cpp.o.d"
  "CMakeFiles/lao_ir.dir/IRParser.cpp.o"
  "CMakeFiles/lao_ir.dir/IRParser.cpp.o.d"
  "CMakeFiles/lao_ir.dir/IRPrinter.cpp.o"
  "CMakeFiles/lao_ir.dir/IRPrinter.cpp.o.d"
  "CMakeFiles/lao_ir.dir/Opcode.cpp.o"
  "CMakeFiles/lao_ir.dir/Opcode.cpp.o.d"
  "CMakeFiles/lao_ir.dir/Verifier.cpp.o"
  "CMakeFiles/lao_ir.dir/Verifier.cpp.o.d"
  "liblao_ir.a"
  "liblao_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lao_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
