# Empty compiler generated dependencies file for lao_ir.
# This may be replaced when dependencies are built.
