file(REMOVE_RECURSE
  "liblao_ir.a"
)
