file(REMOVE_RECURSE
  "liblao_support.a"
)
