file(REMOVE_RECURSE
  "CMakeFiles/lao_support.dir/StringUtils.cpp.o"
  "CMakeFiles/lao_support.dir/StringUtils.cpp.o.d"
  "liblao_support.a"
  "liblao_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lao_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
