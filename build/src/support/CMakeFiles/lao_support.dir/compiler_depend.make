# Empty compiler generated dependencies file for lao_support.
# This may be replaced when dependencies are built.
