file(REMOVE_RECURSE
  "CMakeFiles/lao_regalloc.dir/RegAlloc.cpp.o"
  "CMakeFiles/lao_regalloc.dir/RegAlloc.cpp.o.d"
  "liblao_regalloc.a"
  "liblao_regalloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lao_regalloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
