# Empty compiler generated dependencies file for lao_regalloc.
# This may be replaced when dependencies are built.
