file(REMOVE_RECURSE
  "liblao_regalloc.a"
)
