# Empty compiler generated dependencies file for lao_workloads.
# This may be replaced when dependencies are built.
