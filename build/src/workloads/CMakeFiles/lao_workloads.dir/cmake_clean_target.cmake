file(REMOVE_RECURSE
  "liblao_workloads.a"
)
