file(REMOVE_RECURSE
  "CMakeFiles/lao_workloads.dir/Generator.cpp.o"
  "CMakeFiles/lao_workloads.dir/Generator.cpp.o.d"
  "CMakeFiles/lao_workloads.dir/PaperExamples.cpp.o"
  "CMakeFiles/lao_workloads.dir/PaperExamples.cpp.o.d"
  "CMakeFiles/lao_workloads.dir/Suites.cpp.o"
  "CMakeFiles/lao_workloads.dir/Suites.cpp.o.d"
  "liblao_workloads.a"
  "liblao_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lao_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
