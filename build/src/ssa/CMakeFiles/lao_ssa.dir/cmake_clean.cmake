file(REMOVE_RECURSE
  "CMakeFiles/lao_ssa.dir/IfConversion.cpp.o"
  "CMakeFiles/lao_ssa.dir/IfConversion.cpp.o.d"
  "CMakeFiles/lao_ssa.dir/SSAConstruction.cpp.o"
  "CMakeFiles/lao_ssa.dir/SSAConstruction.cpp.o.d"
  "CMakeFiles/lao_ssa.dir/SSAVerifier.cpp.o"
  "CMakeFiles/lao_ssa.dir/SSAVerifier.cpp.o.d"
  "CMakeFiles/lao_ssa.dir/Transforms.cpp.o"
  "CMakeFiles/lao_ssa.dir/Transforms.cpp.o.d"
  "liblao_ssa.a"
  "liblao_ssa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lao_ssa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
