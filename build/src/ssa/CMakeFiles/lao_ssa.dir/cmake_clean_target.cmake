file(REMOVE_RECURSE
  "liblao_ssa.a"
)
