# Empty compiler generated dependencies file for lao_ssa.
# This may be replaced when dependencies are built.
