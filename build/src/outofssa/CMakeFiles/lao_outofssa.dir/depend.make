# Empty dependencies file for lao_outofssa.
# This may be replaced when dependencies are built.
