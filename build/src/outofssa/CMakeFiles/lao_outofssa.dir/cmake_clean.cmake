file(REMOVE_RECURSE
  "CMakeFiles/lao_outofssa.dir/Coalescer.cpp.o"
  "CMakeFiles/lao_outofssa.dir/Coalescer.cpp.o.d"
  "CMakeFiles/lao_outofssa.dir/Constraints.cpp.o"
  "CMakeFiles/lao_outofssa.dir/Constraints.cpp.o.d"
  "CMakeFiles/lao_outofssa.dir/LeungGeorge.cpp.o"
  "CMakeFiles/lao_outofssa.dir/LeungGeorge.cpp.o.d"
  "CMakeFiles/lao_outofssa.dir/MoveStats.cpp.o"
  "CMakeFiles/lao_outofssa.dir/MoveStats.cpp.o.d"
  "CMakeFiles/lao_outofssa.dir/NaiveABI.cpp.o"
  "CMakeFiles/lao_outofssa.dir/NaiveABI.cpp.o.d"
  "CMakeFiles/lao_outofssa.dir/OptimalCoalescing.cpp.o"
  "CMakeFiles/lao_outofssa.dir/OptimalCoalescing.cpp.o.d"
  "CMakeFiles/lao_outofssa.dir/PhiCoalescing.cpp.o"
  "CMakeFiles/lao_outofssa.dir/PhiCoalescing.cpp.o.d"
  "CMakeFiles/lao_outofssa.dir/PinningContext.cpp.o"
  "CMakeFiles/lao_outofssa.dir/PinningContext.cpp.o.d"
  "CMakeFiles/lao_outofssa.dir/Pipeline.cpp.o"
  "CMakeFiles/lao_outofssa.dir/Pipeline.cpp.o.d"
  "CMakeFiles/lao_outofssa.dir/Sreedhar.cpp.o"
  "CMakeFiles/lao_outofssa.dir/Sreedhar.cpp.o.d"
  "liblao_outofssa.a"
  "liblao_outofssa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lao_outofssa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
