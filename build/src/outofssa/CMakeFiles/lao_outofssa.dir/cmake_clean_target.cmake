file(REMOVE_RECURSE
  "liblao_outofssa.a"
)
