
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/outofssa/Coalescer.cpp" "src/outofssa/CMakeFiles/lao_outofssa.dir/Coalescer.cpp.o" "gcc" "src/outofssa/CMakeFiles/lao_outofssa.dir/Coalescer.cpp.o.d"
  "/root/repo/src/outofssa/Constraints.cpp" "src/outofssa/CMakeFiles/lao_outofssa.dir/Constraints.cpp.o" "gcc" "src/outofssa/CMakeFiles/lao_outofssa.dir/Constraints.cpp.o.d"
  "/root/repo/src/outofssa/LeungGeorge.cpp" "src/outofssa/CMakeFiles/lao_outofssa.dir/LeungGeorge.cpp.o" "gcc" "src/outofssa/CMakeFiles/lao_outofssa.dir/LeungGeorge.cpp.o.d"
  "/root/repo/src/outofssa/MoveStats.cpp" "src/outofssa/CMakeFiles/lao_outofssa.dir/MoveStats.cpp.o" "gcc" "src/outofssa/CMakeFiles/lao_outofssa.dir/MoveStats.cpp.o.d"
  "/root/repo/src/outofssa/NaiveABI.cpp" "src/outofssa/CMakeFiles/lao_outofssa.dir/NaiveABI.cpp.o" "gcc" "src/outofssa/CMakeFiles/lao_outofssa.dir/NaiveABI.cpp.o.d"
  "/root/repo/src/outofssa/OptimalCoalescing.cpp" "src/outofssa/CMakeFiles/lao_outofssa.dir/OptimalCoalescing.cpp.o" "gcc" "src/outofssa/CMakeFiles/lao_outofssa.dir/OptimalCoalescing.cpp.o.d"
  "/root/repo/src/outofssa/PhiCoalescing.cpp" "src/outofssa/CMakeFiles/lao_outofssa.dir/PhiCoalescing.cpp.o" "gcc" "src/outofssa/CMakeFiles/lao_outofssa.dir/PhiCoalescing.cpp.o.d"
  "/root/repo/src/outofssa/PinningContext.cpp" "src/outofssa/CMakeFiles/lao_outofssa.dir/PinningContext.cpp.o" "gcc" "src/outofssa/CMakeFiles/lao_outofssa.dir/PinningContext.cpp.o.d"
  "/root/repo/src/outofssa/Pipeline.cpp" "src/outofssa/CMakeFiles/lao_outofssa.dir/Pipeline.cpp.o" "gcc" "src/outofssa/CMakeFiles/lao_outofssa.dir/Pipeline.cpp.o.d"
  "/root/repo/src/outofssa/Sreedhar.cpp" "src/outofssa/CMakeFiles/lao_outofssa.dir/Sreedhar.cpp.o" "gcc" "src/outofssa/CMakeFiles/lao_outofssa.dir/Sreedhar.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/lao_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ssa/CMakeFiles/lao_ssa.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/lao_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lao_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
